"""Self-tuning backend selection: calibration profiles and the ``auto`` backend.

GraphPi's core move (§IV-C) is choosing among *candidate configurations*
by a cost model instead of a fixed rule.  This module promotes that idea
one level up, from schedule selection to whole-backend selection: the
system now has several conformance-tested execution backends plus knobs
(IEP, auxiliary-pruning mode, inner executors, task granularity), and
which combination wins depends on the workload — frontier execution
dominates on dense patterns over skewed graphs, generated scalar code on
tiny IEP-friendly patterns, the interpreter on 1-loop plans.

The pieces:

* **signatures** — a workload is bucketed by a *pattern signature*
  (matching mode with semantics folded in, pattern size, pattern edge
  count) and a *graph signature* (coarse log-scale buckets of edge
  count, average degree and degree skew).  Both are O(1) to compute —
  cheap enough to evaluate on every query — and deliberately coarse, so
  one measured workload generalises to its neighbourhood.
* :class:`CalibrationProfile` — the persisted result of a calibration
  sweep (:func:`run_calibration`, driven by ``tools/calibrate.py``):
  per (pattern signature, graph signature) bucket, geomean-aggregated
  seconds for every swept :class:`ProfileChoice` (backend + constructor
  options + IEP knob).  Versioned JSON on disk; loading is defensive —
  a corrupt file, an old schema version or a changed backend registry
  is *ignored with a warning* (:class:`ProfileWarning`), never a crash,
  and selection falls back to the static compiled-first policy.
* :class:`AutoBackend` — registered as ``"auto"``: a delegating
  pseudo-backend that looks its context up in the active profile
  (exact bucket first, then nearest same-pattern bucket) and executes
  through the best *compatible* measured choice, falling back to
  :func:`~repro.core.backend.select_backend` when no profile entry
  applies.  Being registered means the cross-backend conformance suite
  auto-covers it like any other backend.
* the session integration (see :mod:`repro.core.session`) applies the
  chosen plan-level knob too: with ``use_iep=None`` and an ``auto``
  preference, the profile's winning IEP choice is folded into the query
  before planning, so ``backend="auto"`` can plan IEP-free for a
  vectorised winner and IEP-suffixed for a compiled one.  The chosen
  backend and predicted-vs-actual seconds are surfaced on
  :class:`~repro.core.query.MatchResult.autotune_report`.

Profiles travel: ``tools/calibrate.py`` writes one, ``repro backends
--profile PATH`` inspects it, ``REPRO_AUTOTUNE_PROFILE=PATH`` (or
:func:`set_active_profile`) activates it process-wide, and
``benchmarks/bench_autotune.py`` asserts that auto-selection stays
within 0.9x of the best static backend (geomean) on the sweep
workloads.  See ``docs/backends.md`` for the tuning guide.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.core.backend import (
    MODES,
    BackendCapabilities,
    ExecutionBackend,
    backend_names,
    candidate_backends,
    capabilities_of,
    get_backend,
    register_backend,
    select_backend,
)
from repro.graph.digraph import DiGraph
from repro.graph.labeled import LabeledGraph
from repro.pattern.directed import DiPattern
from repro.pattern.labeled import LabeledPattern

#: bump when the persisted JSON schema changes; older files are ignored.
PROFILE_VERSION = 1

#: environment variable naming a profile to activate lazily.
PROFILE_ENV = "REPRO_AUTOTUNE_PROFILE"


class ProfileWarning(UserWarning):
    """A calibration profile could not be used (corrupt, stale, missing)."""


class CalibrationError(RuntimeError):
    """The calibration sweep produced inconsistent measurements."""


# ---------------------------------------------------------------------------
# workload signatures
# ---------------------------------------------------------------------------
def fold_mode(mode: str, semantics: str) -> str:
    """The context-level mode: vertex-induced semantics folds into the mode."""
    return "induced" if semantics == "induced" else mode


def pattern_signature(mode: str, n_vertices: int, n_edges: int) -> tuple:
    """The pattern half of a bucket key: (folded mode, |V_p|, |E_p|)."""
    return (mode, int(n_vertices), int(n_edges))


def query_signature(query: Any) -> tuple:
    """:func:`pattern_signature` of a :class:`~repro.core.query.MatchQuery`."""
    p = query.pattern
    if isinstance(p, LabeledPattern):
        structure = p.pattern
        return pattern_signature(
            fold_mode(query.mode, query.semantics),
            structure.n_vertices,
            structure.n_edges,
        )
    if isinstance(p, DiPattern):
        return pattern_signature("directed", p.n_vertices, p.n_arcs)
    return pattern_signature(
        fold_mode(query.mode, query.semantics), p.n_vertices, p.n_edges
    )


def context_signature(ctx: Any) -> tuple:
    """:func:`pattern_signature` recovered from an executable context.

    Computed from the plan alone (every pattern edge appears exactly
    once as a dependency of the later-scheduled endpoint; a directed
    plan splits them across ``out_deps``/``in_deps``), so it agrees with
    :func:`query_signature` of the query that produced the plan.
    """
    plan = ctx.plan
    if ctx.mode == "directed":
        n_edges = sum(
            len(o) + len(i) for o, i in zip(plan.out_deps, plan.in_deps)
        )
    else:
        n_edges = sum(len(d) for d in plan.deps)
    return pattern_signature(ctx.mode, plan.n, n_edges)


def _log_bucket(value: float) -> int:
    """Coarse log2 bucket (0 for values <= 1)."""
    if value <= 1.0:
        return 0
    return int(round(math.log2(value)))


def graph_signature(graph: Any) -> tuple:
    """The graph half of a bucket key: log-scale (size, density, skew).

    O(1)-ish from the CSR header (no triangle count — this runs on every
    auto-selected query, and is memoised on the graph object since every
    graph type here is immutable): edge count, average degree and the
    max-degree/average-degree ratio, each rounded to a power-of-two
    bucket so nearby graphs share entries.
    """
    memo = getattr(graph, "_autotune_signature", None)
    if memo is not None:
        return memo
    original = graph
    if isinstance(graph, LabeledGraph):
        graph = graph.graph
    if isinstance(graph, DiGraph):
        n, m = graph.n_vertices, graph.n_arcs
        import numpy as np

        degrees = np.diff(graph.out_indptr) + np.diff(graph.in_indptr)
        max_degree = int(degrees.max()) if len(degrees) else 0
        avg = m / n if n else 0.0
    else:
        n, m = graph.n_vertices, graph.n_edges
        max_degree = graph.max_degree
        avg = 2.0 * m / n if n else 0.0
    size_bucket = _log_bucket(float(max(m, 1)))
    density_bucket = _log_bucket(avg + 1.0)
    skew_bucket = _log_bucket(max_degree / avg) if avg > 0 else 0
    sig = (size_bucket, density_bucket, skew_bucket)
    try:
        object.__setattr__(original, "_autotune_signature", sig)
    except (AttributeError, TypeError):  # pragma: no cover - slotted graphs
        pass
    return sig


def signature_distance(a: tuple, b: tuple) -> int:
    """L1 distance between two graph signatures (nearest-bucket metric)."""
    return sum(abs(int(x) - int(y)) for x, y in zip(a, b))


# ---------------------------------------------------------------------------
# profile contents
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ProfileChoice:
    """One swept execution configuration: backend + options + IEP knob.

    ``options`` are the backend's constructor keywords as a sorted item
    tuple (hashable; converted to a dict at :func:`get_backend` time).
    ``use_iep`` is the *plan-level* knob: the query is planned with that
    IEP setting before the backend executes it; ``None`` means "planner
    default".
    """

    backend: str
    options: tuple[tuple[str, Any], ...] = ()
    use_iep: bool | None = None

    def options_dict(self) -> dict:
        return dict(self.options)

    def describe(self) -> str:
        opts = ", ".join(f"{k}={v}" for k, v in self.options)
        iep = "" if self.use_iep is None else f" iep={'on' if self.use_iep else 'off'}"
        return f"{self.backend}({opts}){iep}"

    @classmethod
    def make(cls, backend: str, options: dict | None = None,
             use_iep: bool | None = None) -> "ProfileChoice":
        items = tuple(sorted((options or {}).items()))
        return cls(backend=backend, options=items, use_iep=use_iep)


@dataclass(frozen=True)
class BucketEntry:
    """Aggregated measurements for one (pattern, graph) signature bucket."""

    pattern_sig: tuple
    graph_sig: tuple
    #: choice -> geomean seconds across the bucket's workloads.
    timings: tuple[tuple[ProfileChoice, float], ...]

    def ranked(self) -> list[tuple[ProfileChoice, float]]:
        """Choices fastest-first (sorted once — this sits on the
        per-query decision path)."""
        cached = self.__dict__.get("_ranked")
        if cached is None:
            cached = sorted(self.timings, key=lambda item: item[1])
            object.__setattr__(self, "_ranked", cached)
        return cached

    @property
    def best(self) -> tuple[ProfileChoice, float]:
        return self.ranked()[0]


@dataclass
class CalibrationProfile:
    """A persisted calibration result: bucketed per-choice cost model.

    The model is piecewise-constant over signature buckets: within a
    bucket, a choice's predicted cost is the geomean of its measured
    execution seconds across the sweep workloads that landed there.
    ``lookup`` serves the exact bucket when present and otherwise the
    nearest same-pattern bucket within ``max_distance`` — unseen graphs
    inherit the closest measured regime.
    """

    entries: dict[tuple, BucketEntry] = field(default_factory=dict)
    backends: tuple[str, ...] = ()
    version: int = PROFILE_VERSION
    created: str = ""
    host: str = ""
    n_workloads: int = 0
    #: (psig, gsig, plan-iep, enum) -> (choice, seconds, distance) memo
    #: of completed decision walks; the decision itself must stay in the
    #: low-microsecond range or it eats the margin it exists to win.
    _decisions: dict = field(default_factory=dict, repr=False, compare=False)

    # -- selection -----------------------------------------------------
    def lookup(
        self, pattern_sig: tuple, graph_sig: tuple, *, max_distance: int = 4
    ) -> tuple[BucketEntry, int] | None:
        """(entry, bucket distance) for a workload, or ``None``."""
        key = (tuple(pattern_sig), tuple(graph_sig))
        entry = self.entries.get(key)
        if entry is not None:
            return entry, 0
        best: tuple[BucketEntry, int] | None = None
        for (psig, gsig), candidate in self.entries.items():
            if psig != tuple(pattern_sig):
                continue
            distance = signature_distance(gsig, graph_sig)
            if distance <= max_distance and (best is None or distance < best[1]):
                best = (candidate, distance)
        return best

    # -- persistence ---------------------------------------------------
    def to_json(self) -> dict:
        return {
            "version": self.version,
            "created": self.created,
            "host": self.host,
            "backends": list(self.backends),
            "n_workloads": self.n_workloads,
            "entries": [
                {
                    "pattern": list(entry.pattern_sig),
                    "graph": list(entry.graph_sig),
                    "timings": [
                        {
                            "backend": choice.backend,
                            "options": choice.options_dict(),
                            "use_iep": choice.use_iep,
                            "seconds": seconds,
                        }
                        for choice, seconds in entry.ranked()
                    ],
                }
                for entry in self.entries.values()
            ],
        }

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def from_json(cls, payload: dict) -> "CalibrationProfile":
        entries: dict[tuple, BucketEntry] = {}
        for row in payload.get("entries", []):
            psig = tuple(row["pattern"])
            gsig = tuple(row["graph"])
            timings = tuple(
                (
                    ProfileChoice.make(
                        t["backend"], t.get("options"), t.get("use_iep")
                    ),
                    float(t["seconds"]),
                )
                for t in row["timings"]
            )
            entries[(psig, gsig)] = BucketEntry(
                pattern_sig=psig, graph_sig=gsig, timings=timings
            )
        return cls(
            entries=entries,
            backends=tuple(payload.get("backends", ())),
            version=int(payload.get("version", -1)),
            created=str(payload.get("created", "")),
            host=str(payload.get("host", "")),
            n_workloads=int(payload.get("n_workloads", 0)),
        )

    def describe(self) -> str:
        return (
            f"{len(self.entries)} buckets from {self.n_workloads} workloads "
            f"(schema v{self.version}, backends: {', '.join(self.backends)})"
        )


def load_profile(path: str | Path) -> CalibrationProfile | None:
    """Load a profile defensively: any problem warns and returns ``None``.

    The failure modes this absorbs (each a :class:`ProfileWarning`, so
    auto-selection degrades to the static policy instead of crashing):

    * missing or unreadable file;
    * corrupt / non-JSON / structurally wrong contents;
    * a schema version other than :data:`PROFILE_VERSION`;
    * a backend registry that changed since calibration — measurements
      against a different backend set are not trustworthy, so the whole
      profile is invalidated (re-run ``tools/calibrate.py``).
    """
    path = Path(path)
    try:
        raw = path.read_text()
    except OSError as exc:
        warnings.warn(
            f"calibration profile {path} is unreadable ({exc}); "
            "falling back to static backend selection",
            ProfileWarning,
            stacklevel=2,
        )
        return None
    try:
        payload = json.loads(raw)
        if not isinstance(payload, dict):
            raise ValueError("profile root must be a JSON object")
        profile = CalibrationProfile.from_json(payload)
    except (ValueError, KeyError, TypeError) as exc:
        warnings.warn(
            f"calibration profile {path} is corrupt ({exc}); "
            "falling back to static backend selection",
            ProfileWarning,
            stacklevel=2,
        )
        return None
    if profile.version != PROFILE_VERSION:
        warnings.warn(
            f"calibration profile {path} has schema version {profile.version}, "
            f"expected {PROFILE_VERSION}; ignoring it — re-run tools/calibrate.py",
            ProfileWarning,
            stacklevel=2,
        )
        return None
    if set(profile.backends) != set(backend_names()):
        warnings.warn(
            f"calibration profile {path} was calibrated against backends "
            f"{sorted(profile.backends)} but the registry now holds "
            f"{sorted(backend_names())}; ignoring it — re-run tools/calibrate.py",
            ProfileWarning,
            stacklevel=2,
        )
        return None
    return profile


# ---------------------------------------------------------------------------
# the active profile
# ---------------------------------------------------------------------------
_ACTIVE: CalibrationProfile | None = None
_ACTIVE_RESOLVED = False


def set_active_profile(
    profile: "CalibrationProfile | str | Path | None",
) -> CalibrationProfile | None:
    """Install the process-wide profile (a path loads it defensively)."""
    global _ACTIVE, _ACTIVE_RESOLVED
    if isinstance(profile, (str, Path)):
        profile = load_profile(profile)
    _ACTIVE = profile
    _ACTIVE_RESOLVED = True
    return _ACTIVE


def get_active_profile() -> CalibrationProfile | None:
    """The installed profile; first call consults ``REPRO_AUTOTUNE_PROFILE``."""
    global _ACTIVE, _ACTIVE_RESOLVED
    if not _ACTIVE_RESOLVED:
        _ACTIVE_RESOLVED = True
        env = os.environ.get(PROFILE_ENV)
        if env:
            _ACTIVE = load_profile(env)
    return _ACTIVE


# ---------------------------------------------------------------------------
# the auto backend
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class AutotuneReport:
    """How one auto-selected execution was decided, surfaced on
    :attr:`~repro.core.query.MatchResult.autotune_report`."""

    chosen: str
    options: tuple[tuple[str, Any], ...] = ()
    #: "profile" (exact bucket), "profile-nearest" (bucket distance > 0)
    #: or "static" (no applicable entry; compiled-first fallback).
    source: str = "static"
    predicted_seconds: float | None = None
    actual_seconds: float | None = None
    bucket_distance: int = 0
    #: a delegate's own side-channel report (e.g. DistributedReport).
    inner_report: Any = None

    def describe(self) -> str:
        opts = ", ".join(f"{k}={v}" for k, v in self.options)
        parts = [f"auto -> {self.chosen}({opts}) via {self.source}"]
        if self.predicted_seconds is not None:
            parts.append(f"predicted {self.predicted_seconds * 1e3:.2f}ms")
        if self.actual_seconds is not None:
            parts.append(f"actual {self.actual_seconds * 1e3:.2f}ms")
        return ", ".join(parts)


@register_backend
class AutoBackend(ExecutionBackend):
    """Profile-driven delegation to the calibrated-best backend per context."""

    name = "auto"
    supports_enumeration = True
    #: a delegating pseudo-backend: never its own delegation candidate.
    is_meta = True
    # IEP and kernel consumption are declared True so the planner keeps
    # its default behaviour (IEP-suffix plans stay available, kernels
    # are pre-generated for a compiled delegate); the session folds the
    # profile's *measured* IEP preference in before planning, which is
    # where an IEP-free plan for a vectorised winner comes from.
    capabilities = BackendCapabilities(
        modes=frozenset(MODES),
        iep=True,
        enumeration=True,
        generated_kernels=True,
    )

    def __init__(self, *, profile: "CalibrationProfile | str | Path | None" = None):
        if isinstance(profile, (str, Path)):
            profile = load_profile(profile)
        self.profile = profile

    def active_profile(self) -> CalibrationProfile | None:
        return self.profile if self.profile is not None else get_active_profile()

    def supports(self, ctx) -> bool:
        # There is always a delegate: the interpreter covers every mode.
        return ctx.mode in MODES

    # -- the decision ---------------------------------------------------
    def _materialise(
        self, choice: ProfileChoice, ctx, *, for_enumeration: bool
    ) -> ExecutionBackend | None:
        """The backend instance a choice names, or ``None`` if it cannot
        serve this context (unregistered name, bad options, wrong mode,
        IEP mismatch with the already-compiled plan, no enumeration)."""
        if capabilities_of(choice.backend) is None:
            return None
        if choice.use_iep is not None:
            plan_iep = getattr(ctx.plan, "iep_k", 0) > 0
            if choice.use_iep != plan_iep:
                return None
        try:
            backend = get_backend(choice.backend, **choice.options_dict())
        except (TypeError, ValueError):
            return None
        if getattr(backend, "is_meta", False):
            return None
        if not backend.supports(ctx):
            return None
        if for_enumeration and not backend.supports_enumeration:
            return None
        return backend

    def decide(
        self, ctx, *, for_enumeration: bool = False
    ) -> tuple[ExecutionBackend, AutotuneReport]:
        """(delegate, report) for a context — profile first, static else."""
        profile = self.active_profile()
        if profile is not None:
            psig = context_signature(ctx)
            gsig = graph_signature(ctx.graph)
            memo_key = (
                psig, gsig, getattr(ctx.plan, "iep_k", 0) > 0, for_enumeration
            )
            memo = profile._decisions.get(memo_key)
            if memo is not None:
                choice, seconds, distance = memo
                backend = self._materialise(
                    choice, ctx, for_enumeration=for_enumeration
                )
                if backend is not None:
                    return backend, AutotuneReport(
                        chosen=backend.name,
                        options=choice.options,
                        source="profile" if distance == 0 else "profile-nearest",
                        predicted_seconds=seconds,
                        bucket_distance=distance,
                    )
            found = profile.lookup(psig, gsig)
            if found is not None:
                entry, distance = found
                allowed = {
                    info.name
                    for info in candidate_backends(ctx, for_enumeration=for_enumeration)
                }
                for choice, seconds in entry.ranked():
                    if choice.backend not in allowed:
                        continue
                    backend = self._materialise(
                        choice, ctx, for_enumeration=for_enumeration
                    )
                    if backend is not None:
                        profile._decisions[memo_key] = (choice, seconds, distance)
                        return backend, AutotuneReport(
                            chosen=backend.name,
                            options=choice.options,
                            source="profile" if distance == 0 else "profile-nearest",
                            predicted_seconds=seconds,
                            bucket_distance=distance,
                        )
        fallback = select_backend(ctx, None, for_enumeration=for_enumeration)
        return fallback, AutotuneReport(chosen=fallback.name, source="static")

    # -- execution ------------------------------------------------------
    def count(self, ctx) -> int:
        return self.count_with_report(ctx)[0]

    def count_with_report(self, ctx) -> tuple[int, AutotuneReport]:
        self._require(ctx)
        backend, report = self.decide(ctx)
        runner = getattr(backend, "count_with_report", None)
        if runner is not None:
            n, inner = runner(ctx)
            report = dataclasses.replace(report, inner_report=inner)
        else:
            n = backend.count(ctx)
        return n, report

    def enumerate_embeddings(self, ctx, limit=None):
        self._require(ctx)
        backend, _ = self.decide(ctx, for_enumeration=True)
        return backend.enumerate_embeddings(ctx, limit=limit)


def is_auto_spec(spec: Any) -> bool:
    """Whether a ``backend=`` preference names the auto pseudo-backend."""
    return spec == "auto" or isinstance(spec, AutoBackend)


def profile_for_spec(spec: Any) -> CalibrationProfile | None:
    """The profile an ``auto`` spec would consult (``None`` otherwise)."""
    if isinstance(spec, AutoBackend):
        return spec.active_profile()
    if spec == "auto":
        return get_active_profile()
    return None


def plan_choice_for(
    query: Any, graph: Any, profile: CalibrationProfile | None = None
) -> ProfileChoice | None:
    """The profile's winning choice for a query on a graph, if any.

    Used by :class:`~repro.core.session.MatchSession` *before planning*
    to fold the measured plan-level knob (``use_iep``) into an
    ``auto``-preferenced query, so the plan the winner was measured on
    is the plan it gets.  ``profile`` short-circuits the resolution when
    the caller already holds it.
    """
    if profile is None:
        profile = profile_for_spec(query.backend)
    if profile is None:
        return None
    found = profile.lookup(query_signature(query), graph_signature(graph))
    if found is None:
        return None
    entry, _ = found
    for choice, _seconds in entry.ranked():
        if capabilities_of(choice.backend) is not None:
            return choice
    return None


# ---------------------------------------------------------------------------
# the calibration sweep
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CalibrationWorkload:
    """One (graph, query) cell of the sweep."""

    name: str
    graph: Any
    query: Any


@dataclass(frozen=True)
class WorkloadMeasurement:
    """Every choice's best-of-``repeats`` seconds on one workload."""

    workload: str
    pattern_sig: tuple
    graph_sig: tuple
    count: int
    seconds: tuple[tuple[ProfileChoice, float], ...]

    @property
    def best(self) -> tuple[ProfileChoice, float]:
        return min(self.seconds, key=lambda item: item[1])


def default_choice_grid(*, heavy: bool = False) -> list[ProfileChoice]:
    """The swept backend x knob grid.

    The light grid covers the in-process backends and the knobs that
    move single-query latency (IEP on/off, auxiliary pruning on/off);
    ``heavy=True`` adds the process-pool and distributed configurations
    (worth sweeping on large graphs, pure overhead on small ones).
    """
    grid = [
        ProfileChoice.make("interpreter", use_iep=True),
        ProfileChoice.make("interpreter", use_iep=False),
        ProfileChoice.make("preslice", use_iep=True),
        ProfileChoice.make("compiled", use_iep=True),
        ProfileChoice.make("compiled", use_iep=False),
        ProfileChoice.make("vectorised", {"aux": "auto"}, use_iep=False),
        ProfileChoice.make("vectorised", {"aux": False}, use_iep=False),
    ]
    if heavy:
        grid += [
            ProfileChoice.make("parallel", {"n_workers": 2}, use_iep=True),
            ProfileChoice.make(
                "distributed", {"simulate": False, "inner": "vectorised"},
                use_iep=False,
            ),
            ProfileChoice.make(
                "distributed", {"simulate": False, "inner": "compiled"},
                use_iep=True,
            ),
        ]
    return grid


def choice_applicable(choice: ProfileChoice, query: Any) -> bool:
    """Cheap pre-filter: can a choice even be *asked* for this query?

    Declared capabilities only (the definitive check is whether the
    session reports the choice's backend actually executed — a silent
    interpreter fallback must not be recorded under the choice's name).
    """
    if query.semantics == "induced" and choice.use_iep:
        return False  # induced + IEP is rejected at query construction
    caps = capabilities_of(choice.backend)
    if caps is None:
        return False
    mode = fold_mode(query.mode, query.semantics)
    if not caps.supports_mode(mode):
        return False
    if choice.use_iep and not caps.iep:
        return False
    return True


def measure_workload(
    workload: CalibrationWorkload,
    choices: Iterable[ProfileChoice],
    *,
    repeats: int = 3,
) -> WorkloadMeasurement:
    """Best-of-``repeats`` execution seconds per applicable choice.

    Planning cost is excluded by construction: timings come from
    :attr:`MatchResult.seconds_execute` on a warm session plan cache.
    Every choice's count is cross-checked — a disagreement raises
    :class:`CalibrationError` rather than persisting a profile that
    prefers a wrong-answer backend.
    """
    from repro.core.session import MatchSession

    session = MatchSession(workload.graph)
    query = workload.query
    counts: dict[ProfileChoice, int] = {}
    seconds: list[tuple[ProfileChoice, float]] = []
    for choice in choices:
        if not choice_applicable(choice, query):
            continue
        try:
            backend = get_backend(choice.backend, **choice.options_dict())
        except (TypeError, ValueError):
            continue
        q = query
        if choice.use_iep is not None:
            q = dataclasses.replace(query, use_iep=choice.use_iep)
        best = math.inf
        executed = None
        for _ in range(max(1, repeats)):
            result = session.count(q, backend=backend)
            executed = result.backend
            best = min(best, result.seconds_execute)
        if executed != choice.backend:
            # the registry silently fell back (e.g. vectorised on a
            # 1-loop or IEP plan): not a measurement of this choice.
            continue
        counts[choice] = int(result)
        seconds.append((choice, best))
    if not seconds:
        raise CalibrationError(
            f"no swept choice could execute workload {workload.name!r}"
        )
    if len(set(counts.values())) > 1:
        raise CalibrationError(
            f"swept backends disagree on workload {workload.name!r}: "
            + ", ".join(f"{c.describe()}={n}" for c, n in counts.items())
        )
    return WorkloadMeasurement(
        workload=workload.name,
        pattern_sig=query_signature(query),
        graph_sig=graph_signature(workload.graph),
        count=next(iter(counts.values())),
        seconds=tuple(seconds),
    )


def _geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(max(v, 1e-12)) for v in values) / len(values))


def build_profile(
    measurements: Iterable[WorkloadMeasurement],
    *,
    created: str = "",
    host: str = "",
) -> CalibrationProfile:
    """Aggregate sweep measurements into the bucketed cost model."""
    per_bucket: dict[tuple, dict[ProfileChoice, list[float]]] = {}
    n_workloads = 0
    for m in measurements:
        n_workloads += 1
        bucket = per_bucket.setdefault((m.pattern_sig, m.graph_sig), {})
        for choice, secs in m.seconds:
            bucket.setdefault(choice, []).append(secs)
    entries = {
        key: BucketEntry(
            pattern_sig=key[0],
            graph_sig=key[1],
            timings=tuple(
                (choice, _geomean(samples)) for choice, samples in bucket.items()
            ),
        )
        for key, bucket in per_bucket.items()
    }
    return CalibrationProfile(
        entries=entries,
        backends=tuple(sorted(backend_names())),
        created=created,
        host=host,
        n_workloads=n_workloads,
    )


def run_calibration(
    workloads: Iterable[CalibrationWorkload],
    choices: Iterable[ProfileChoice] | None = None,
    *,
    repeats: int = 3,
    created: str = "",
    host: str = "",
) -> tuple[CalibrationProfile, list[WorkloadMeasurement]]:
    """Sweep -> measurements -> profile (the whole harness in one call)."""
    grid = list(choices) if choices is not None else default_choice_grid()
    measurements = [
        measure_workload(w, grid, repeats=repeats) for w in workloads
    ]
    profile = build_profile(measurements, created=created, host=host)
    return profile, measurements


__all__ = [
    "PROFILE_VERSION",
    "PROFILE_ENV",
    "ProfileWarning",
    "CalibrationError",
    "pattern_signature",
    "query_signature",
    "context_signature",
    "graph_signature",
    "signature_distance",
    "ProfileChoice",
    "BucketEntry",
    "CalibrationProfile",
    "load_profile",
    "set_active_profile",
    "get_active_profile",
    "AutotuneReport",
    "AutoBackend",
    "is_auto_spec",
    "plan_choice_for",
    "CalibrationWorkload",
    "WorkloadMeasurement",
    "default_choice_grid",
    "choice_applicable",
    "measure_workload",
    "build_profile",
    "run_calibration",
]
