"""Vertex-induced matching semantics.

The paper (§V-A) notes: *"Since the definition of pattern matching in
AutoMine and GraphZero is different from other systems, we made some
minor modifications in the reproduced version to make its results
consistent with those of other systems."*  The difference is matching
semantics:

* **edge-induced** (GraphPi, Fractal, Peregrine default): an embedding
  must contain every pattern edge — extra edges between matched data
  vertices are allowed.  Everything else in this repository uses this
  semantics.
* **vertex-induced** (AutoMine/GraphZero): the subgraph induced by the
  matched vertices must equal the pattern exactly — pattern *non-edges*
  must be non-edges in the data graph too.

This module implements vertex-induced matching both ways and
cross-checks them:

1. :class:`InducedEngine` — the nested-loop engine with anti-edge
   filtering: the candidate set of each loop additionally *excludes* the
   neighbourhoods of bound vertices that are non-adjacent in the pattern.
   All GraphPi machinery (Algorithm 1 restrictions, 2-phase schedules,
   the performance model) applies unchanged, because automorphisms of a
   pattern preserve non-edges exactly as they preserve edges.
2. :func:`induced_count_via_moebius` — the classic linear-algebra route:
   the edge-induced counts of a pattern and all of its same-order
   supergraphs determine the vertex-induced count through a triangular
   Möbius inversion over the supergraph lattice.

The conversion matrix (:func:`supergraph_decomposition`) is also the
standard tool for converting a motif census between the two semantics —
:mod:`repro.mining.motifs` uses it.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.core.config import Configuration, ExecutionPlan
from repro.core.engine import Engine
from repro.graph.csr import Graph
from repro.graph.intersection import contains, difference
from repro.pattern.automorphism import automorphism_count
from repro.pattern.isomorphism import canonical_form, find_isomorphism
from repro.pattern.pattern import Pattern


class InducedEngine(Engine):
    """Nested-loop engine enforcing vertex-induced semantics.

    The candidate set of the vertex scheduled at depth ``d`` becomes::

        (∩_{j ∈ deps[d]} N(v_j))  \\  (∪_{j ∈ antideps[d]} N(v_j))

    where ``antideps[d]`` are the earlier depths whose pattern vertices
    are *not* adjacent to the one scheduled at ``d``.  Restriction
    range-slicing still applies (automorphisms preserve non-adjacency,
    so Algorithm 1's restriction sets break induced automorphisms too).

    IEP is not supported: Inclusion–Exclusion counts tuples drawn from
    *independent* candidate sets, but induced semantics makes the inner
    vertices interact through their anti-edges (any two unconnected
    pattern vertices must also be unconnected in the data graph), so
    plans must be compiled with ``iep_k=0``.
    """

    def __init__(self, graph: Graph, plan: ExecutionPlan):
        if plan.iep_k:
            raise ValueError("induced matching requires a plan compiled with iep_k=0")
        super().__init__(graph, plan)
        pattern = plan.config.pattern
        schedule = plan.config.schedule
        anti: list[tuple[int, ...]] = []
        for d, v in enumerate(schedule):
            anti.append(
                tuple(
                    j for j in range(d) if not pattern.has_edge(v, schedule[j])
                )
            )
        self._antideps = tuple(anti)

    def candidates(self, depth: int, assigned: Sequence[int]) -> np.ndarray:
        cand = super().candidates(depth, assigned)
        for j in self._antideps[depth]:
            if len(cand) == 0:
                break
            cand = difference(cand, self.graph.neighbors(assigned[j]))
        return cand


def induced_count_engine(graph: Graph, config: Configuration, *, backend=None) -> int:
    """Vertex-induced embedding count under one configuration.

    Dispatches through the execution-backend registry: anti-edge
    filtering lives in the interpreter engine family, so the
    compiled-first default resolves to the interpreter, and
    ``backend="parallel"`` runs the same engine under prefix tasks.
    """
    from repro.core.backend import MatchContext, select_backend

    plan = config.compile(iep_k=0)
    ctx = MatchContext(graph=graph, plan=plan, mode="induced")
    return select_backend(ctx, backend).count(ctx)


def induced_enumerate(
    graph: Graph, config: Configuration, limit: int | None = None
) -> Iterator[tuple[int, ...]]:
    """Yield vertex-induced embeddings (tuples indexed by pattern vertex)."""
    plan = config.compile(iep_k=0)
    return InducedEngine(graph, plan).enumerate_embeddings(limit=limit)


# ---------------------------------------------------------------------------
# the supergraph lattice and Möbius inversion
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SupergraphTerm:
    """One isomorphism class in the decomposition of a pattern's
    edge-induced count into vertex-induced counts.

    ``coefficient`` is the (integral) multiplier ``m(P, Q)`` in::

        noninduced(P) = Σ_Q  m(P, Q) · induced(Q)

    derived from counting labeled edge-supersets: with ``a`` the number
    of edge subsets ``S ⊆ antiedges(P)`` for which ``P ∪ S ≅ Q``,
    ``m(P, Q) = a · |Aut(Q)| / |Aut(P)|``.
    """

    pattern: Pattern
    coefficient: int

    @property
    def is_identity(self) -> bool:
        return self.coefficient == 1 and self.pattern.n_edges == 0


def supergraph_decomposition(pattern: Pattern) -> list[SupergraphTerm]:
    """All same-order supergraph classes of ``pattern`` with multipliers.

    The first term is always ``pattern`` itself with coefficient 1;
    subsequent terms are proper supergraphs in increasing edge count.
    Exponential in the number of anti-edges — patterns of paper size
    (≤ 7 vertices, ≥ spanning-connected) stay tiny.
    """
    n = pattern.n_vertices
    anti_edges = [
        (u, v)
        for u, v in combinations(range(n), 2)
        if not pattern.has_edge(u, v)
    ]
    base_edges = pattern.edges
    # Group labeled supergraphs by isomorphism class.
    by_class: dict[tuple[int, int], tuple[Pattern, int]] = {}
    for r in range(len(anti_edges) + 1):
        for extra in combinations(anti_edges, r):
            sup = Pattern(n, base_edges + list(extra))
            key = canonical_form(sup)
            if key in by_class:
                rep, cnt = by_class[key]
                by_class[key] = (rep, cnt + 1)
            else:
                by_class[key] = (sup, 1)
    aut_p = automorphism_count(pattern)
    terms = []
    for rep, labeled_count in by_class.values():
        num = labeled_count * automorphism_count(rep)
        q, rem = divmod(num, aut_p)
        if rem:
            raise AssertionError(
                "supergraph coefficient must be integral: "
                f"{labeled_count}·|Aut(Q)|={num} not divisible by |Aut(P)|={aut_p}"
            )
        terms.append(SupergraphTerm(pattern=rep, coefficient=q))
    terms.sort(key=lambda t: (t.pattern.n_edges, canonical_form(t.pattern)))
    assert terms[0].pattern == pattern or find_isomorphism(terms[0].pattern, pattern)
    assert terms[0].coefficient == 1
    return terms


def induced_count_via_moebius(
    graph: Graph,
    pattern: Pattern,
    *,
    noninduced_counter: Callable[[Graph, Pattern], int] | None = None,
) -> int:
    """Vertex-induced count from edge-induced counts by Möbius inversion.

    ``noninduced(P) = Σ_{Q ⊇ P} m(P, Q) · induced(Q)`` is triangular in
    edge count, so processing supergraph classes densest-first turns it
    into back-substitution.  Each class's edge-induced count comes from
    ``noninduced_counter`` (default: the full GraphPi pipeline via
    :func:`repro.core.api.count_pattern`).

    Cost: one edge-induced count per supergraph class — worthwhile when
    an edge-induced counter is much faster than induced enumeration
    (e.g. with IEP), and the exact trade the AutoMine lineage makes.
    """
    if noninduced_counter is None:
        from repro.core.api import count_pattern

        noninduced_counter = count_pattern

    terms = supergraph_decomposition(pattern)
    # induced(Q) computed densest-first; the densest class is a clique,
    # whose induced and non-induced counts coincide.
    induced: dict[tuple[int, int], int] = {}
    for term in reversed(terms):
        key = canonical_form(term.pattern)
        total = noninduced_counter(graph, term.pattern)
        sub_terms = supergraph_decomposition(term.pattern)
        for sub in sub_terms[1:]:  # strict supergraphs of this class
            total -= sub.coefficient * induced[canonical_form(sub.pattern)]
        induced[key] = total
    value = induced[canonical_form(pattern)]
    if value < 0:
        raise AssertionError(
            f"induced count must be non-negative, got {value} — "
            "inconsistent non-induced counts"
        )
    return value


def noninduced_from_induced(
    pattern: Pattern, induced_counts: dict[tuple[int, int], int]
) -> int:
    """Forward direction: assemble the edge-induced count of ``pattern``
    from a table of vertex-induced counts keyed by canonical form.

    Used to cross-validate a motif census computed under either
    semantics against the other.
    """
    total = 0
    for term in supergraph_decomposition(pattern):
        key = canonical_form(term.pattern)
        if key not in induced_counts:
            raise KeyError(
                f"missing induced count for supergraph class {term.pattern!r}"
            )
        total += term.coefficient * induced_counts[key]
    return total


def induced_count(
    graph: Graph,
    pattern: Pattern,
    *,
    method: str = "engine",
    backend=None,
    **matcher_kwargs,
) -> int:
    """Count vertex-induced embeddings of ``pattern`` in ``graph``.

    ``method="engine"`` plans with the normal GraphPi pipeline and runs
    the anti-edge-filtering engine (through the unified session facade,
    so plans are cached per graph and ``backend=`` picks any registered
    backend); ``method="moebius"`` combines edge-induced counts of the
    supergraph lattice (can exploit IEP — and each term's edge-induced
    count runs on the requested backend, compiled by default).
    Both are tested to agree.
    """
    if pattern.n_vertices > 1 and not pattern.is_connected():
        raise ValueError("induced matching requires a connected pattern")
    if method == "engine":
        from repro.core.query import MatchQuery
        from repro.core.session import get_session

        query = MatchQuery(
            pattern=pattern, semantics="induced", use_codegen=False, **matcher_kwargs
        )
        return get_session(graph).count(query, backend=backend).count
    if method == "moebius":
        if backend is None:
            return induced_count_via_moebius(graph, pattern)
        from repro.core.api import count_pattern

        return induced_count_via_moebius(
            graph,
            pattern,
            noninduced_counter=lambda g, p: count_pattern(g, p, backend=backend),
        )
    raise ValueError(f"unknown method {method!r}: expected 'engine' or 'moebius'")
