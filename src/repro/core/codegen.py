"""Code generation: specialise a plan into straight-line Python source.

GraphPi generates C++ for the chosen configuration and compiles it with
gcc (§III, "Code Generation and Compilation").  The Python analogue:
``generate_source`` emits a dedicated counting function for one
:class:`~repro.core.config.ExecutionPlan` — loop nest unrolled, depth
constants folded, restriction bounds inlined, intersections *hoisted* to
the loop where their last operand is bound (exactly Fig. 5(b), where
``tmpAB`` is computed in the B loop and reused across the D loop), and
IEP blocks expanded into explicit arithmetic.  ``compile_plan_function``
``exec``s the source.

The generated function is semantically identical to the interpreter
(:mod:`repro.core.engine`); tests assert equality on random inputs.  It
is faster because per-depth bookkeeping (dependency lookups, bound
scans, recursion) disappears at generation time — the same reason the
paper generates code instead of interpreting schedules.

The emitted source is kept readable on purpose: it is part of the
system's observable behaviour (the paper prints its pseudocode in
Fig. 5(b)) and plan-level tests diff against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.config import ExecutionPlan
from repro.core.iep import partition_coefficient, set_partitions
from repro.graph.csr import Graph
from repro.graph.intersection import bounded_slice, contains, difference, intersect_many


@dataclass(frozen=True)
class GeneratedCounter:
    """A compiled counting function plus its source (for inspection).

    ``mode`` records the matching semantics the kernel was generated
    for (``"plain"``/``"induced"``/``"labeled"``/``"directed"``) — the
    backend uses it
    to detect that a cached kernel does not fit the current context
    (same plan object, different semantics) and must be regenerated.
    Labeled kernels take a :class:`~repro.graph.labeled.LabeledGraph`.
    """

    plan: ExecutionPlan
    source: str
    function: Callable[[Graph], int]
    mode: str = "plain"

    def __call__(self, graph) -> int:
        return self.function(graph)


@dataclass(frozen=True)
class GeneratedPrefixCounter:
    """A compiled worker-side kernel: inner loops under an outer prefix.

    The contract matches :meth:`repro.core.engine.Engine.count_prefix`:
    the prefix binds the outermost ``split_depth`` loop values (already
    restriction-checked by the master), and the returned count is *raw*
    (no IEP overcount division) so task partials can be summed before a
    single final division.
    """

    plan: ExecutionPlan
    split_depth: int
    source: str
    function: Callable[[Graph, tuple], int]

    def __call__(self, graph: Graph, prefix: tuple) -> int:
        return self.function(graph, prefix)


def _bounds_expr(plan: ExecutionPlan, depth: int, base: str) -> tuple[str | None, str]:
    """Return (slice_stmt, var) applying depth's restriction bounds."""
    lo_terms = [f"v{j}" for j in plan.lower[depth]]
    hi_terms = [f"v{j}" for j in plan.upper[depth]]
    if not lo_terms and not hi_terms:
        return None, base
    lo = (f"max({', '.join(lo_terms)})" if len(lo_terms) > 1 else lo_terms[0]) if lo_terms else "None"
    hi = (f"min({', '.join(hi_terms)})" if len(hi_terms) > 1 else hi_terms[0]) if hi_terms else "None"
    return f"s{depth} = bounded_slice({base}, {lo}, {hi})", f"s{depth}"


def _candidate_stmts(
    plan: ExecutionPlan,
    depth: int,
    base: str,
    depth_labels: tuple | None,
    antideps: tuple | None,
) -> tuple[list[str], str]:
    """Return (stmts, var): restriction bounds, then the mode-specific
    filters — label equality (labeled) and anti-edge differences
    (induced).  Every stage preserves sortedness, so the innermost
    ``contains`` corrections keep working on the final variable."""
    stmts: list[str] = []
    stmt, var = _bounds_expr(plan, depth, base)
    if stmt:
        stmts.append(stmt)
    if depth_labels is not None:
        stmts.append(f"l{depth} = {var}[labels[{var}] == {depth_labels[depth]}]")
        var = f"l{depth}"
    if antideps is not None:
        for j in antideps[depth]:
            stmts.append(f"x{depth} = difference({var}, nb{j})")
            var = f"x{depth}"
    return stmts, var


def generate_source(
    plan: ExecutionPlan,
    func_name: str = "generated_count",
    *,
    split_depth: int = 0,
    depth_labels: tuple | None = None,
    antideps: tuple | None = None,
) -> str:
    """Emit the specialised counting function's Python source.

    With ``split_depth == 0`` (default) the function takes ``(graph)``
    and counts the whole loop nest.  With ``split_depth = s > 0`` the
    function takes ``(graph, prefix)``: the outermost ``s`` loop values
    come pre-bound from the prefix (the master already applied their
    restrictions, exactly :meth:`Engine.iter_prefixes`'s contract) and
    only the remaining inner loops are executed.  Prefix functions
    return the *raw* count — the IEP overcount divisor is applied once
    by the aggregator, mirroring ``Engine.count_prefix``.

    ``depth_labels`` (one data-label per schedule position) switches the
    kernel to labeled semantics — the function then takes a
    :class:`~repro.graph.labeled.LabeledGraph` and filters every depth's
    candidates by label.  ``antideps`` (per depth, the earlier columns
    the pattern does *not* connect to) switches to vertex-induced
    semantics — candidates adjacent to an anti-dependency are removed
    with sorted ``difference``.  Both are innermost-count variants:
    they require ``iep_k == 0`` and a whole-nest kernel.
    """
    n = plan.n
    n_loops = plan.n_loops
    if not 0 <= split_depth < n_loops:
        raise ValueError(
            f"split_depth must be in [0, {n_loops - 1}], got {split_depth}"
        )
    if depth_labels is not None and antideps is not None:
        raise ValueError("labeled induced kernels are not supported")
    if (depth_labels is not None or antideps is not None) and (
        plan.iep_k > 0 or split_depth
    ):
        raise ValueError(
            "labeled/induced kernels require iep_k == 0 and split_depth == 0"
        )
    indent = "    "
    lines: list[str] = []
    emit = lines.append

    args = "graph" if split_depth == 0 else "graph, prefix"
    emit(f"def {func_name}({args}):")
    emit(f'    """Generated for {plan.config.describe()}')
    if split_depth:
        emit(f"    Worker kernel: outermost {split_depth} loops bound by prefix.")
    if depth_labels is not None:
        emit(f"    Labeled kernel: per-depth labels {depth_labels}.")
    if antideps is not None:
        emit("    Vertex-induced kernel: anti-edges excluded per depth.")
    if plan.iep_k:
        emit(f"    IEP over the innermost {plan.iep_k} loops; overcount divisor "
             f"{plan.iep_overcount}.")
    emit('    """')
    if depth_labels is not None:
        emit("    indptr = graph.graph.indptr")
        emit("    indices = graph.graph.indices")
        emit("    labels = graph.labels")
    else:
        emit("    indptr = graph.indptr")
        emit("    indices = graph.indices")
    emit("    nv = graph.n_vertices")
    emit(f"    if nv < {n}:")
    emit("        return 0")
    emit("    total = 0")
    if any(not plan.deps[d] for d in range(split_depth, n)):
        emit("    all_vertices = np.arange(nv, dtype=indices.dtype)")

    # ------------------------------------------------------------------
    # hoisting plan
    # ------------------------------------------------------------------
    # nb{d} needed if depth d's value feeds an intersection/raw set at an
    # *executed* depth (>= split_depth; prefix depths have no candidates)
    # — or an anti-edge difference, for induced kernels.
    nb_needed = [
        any(d in plan.deps[later] for later in range(max(d + 1, split_depth), n))
        or (
            antideps is not None
            and any(d in antideps[later] for later in range(d + 1, n))
        )
        for d in range(n)
    ]
    # Raw candidate var per executed/inner depth: all_vertices / nb{j} /
    # hoisted c{d}.  A multi-dep intersection whose operands are all
    # prefix-bound hoists into the preamble.
    raw_var: dict[int, str] = {}
    hoist_at: dict[int, list[int]] = {}
    for d in range(split_depth, n):
        deps = plan.deps[d]
        if not deps:
            raw_var[d] = "all_vertices"
        elif len(deps) == 1:
            raw_var[d] = f"nb{deps[0]}"
        else:
            raw_var[d] = f"c{d}"
            hoist_at.setdefault(max(deps), []).append(d)

    def emit_loop_body_setup(depth: int, pad: str) -> None:
        """nb binding + hoisted intersections, after v{depth} is bound."""
        if nb_needed[depth]:
            emit(f"{pad}nb{depth} = indices[indptr[v{depth}]:indptr[v{depth}+1]]")
        for d in hoist_at.get(depth, ()):
            args = ", ".join(f"nb{j}" for j in plan.deps[d])
            emit(f"{pad}c{d} = intersect_many([{args}])")

    # ------------------------------------------------------------------
    # prefix preamble (worker kernels only)
    # ------------------------------------------------------------------
    for j in range(split_depth):
        emit(f"    v{j} = prefix[{j}]")
        emit_loop_body_setup(j, indent)

    # ------------------------------------------------------------------
    # outer loops
    # ------------------------------------------------------------------
    for depth in range(split_depth, n_loops - 1):
        pad = indent * (depth - split_depth + 1)
        stmts, cand = _candidate_stmts(
            plan, depth, raw_var[depth], depth_labels, antideps
        )
        for stmt in stmts:
            emit(f"{pad}{stmt}")
        # .tolist() iterates plain Python ints: cheaper per-iteration
        # than boxing numpy scalars, and downstream indexing/compares
        # stay in the fast int path.
        emit(f"{pad}for v{depth} in {cand}.tolist():")
        body = indent * (depth - split_depth + 2)
        distinct = [f"v{depth} != v{j}" for j in range(depth)]
        if distinct:
            emit(f"{body}if not ({' and '.join(distinct)}):")
            emit(f"{body}{indent}continue")
        emit_loop_body_setup(depth, body)

    # ------------------------------------------------------------------
    # innermost executed loop
    # ------------------------------------------------------------------
    last = n_loops - 1
    pad = indent * (last - split_depth + 1)
    stmts, cand = _candidate_stmts(plan, last, raw_var[last], depth_labels, antideps)
    for stmt in stmts:
        emit(f"{pad}{stmt}")
    if plan.iep_k == 0:
        emit(f"{pad}cnt = len({cand})")
        for j in range(last):
            emit(f"{pad}if contains({cand}, v{j}):")
            emit(f"{pad}{indent}cnt -= 1")
        emit(f"{pad}total += cnt")
    else:
        emit(f"{pad}for v{last} in {cand}.tolist():")
        body = pad + indent
        distinct = [f"v{last} != v{j}" for j in range(last)]
        if distinct:
            emit(f"{body}if not ({' and '.join(distinct)}):")
            emit(f"{body}{indent}continue")
        emit_loop_body_setup(last, body)
        _emit_iep(plan, emit, body, raw_var)

    if split_depth or plan.iep_overcount == 1:
        emit("    return total")
    else:
        emit(f"    return total // {plan.iep_overcount}")
    return "\n".join(lines) + "\n"


def _emit_iep(plan: ExecutionPlan, emit, pad: str, raw_var: dict[int, str]) -> None:
    """Expand the IEP evaluation into explicit block arithmetic."""
    n, k = plan.n, plan.iep_k
    n_loops = plan.n_loops
    indent = "    "

    # Per inner position: bounded candidate set S{sid}, deduplicated by
    # (raw source, bounds) signature.
    spec_of_inner: list[int] = []
    specs: list[tuple[str, tuple[int, ...], tuple[int, ...]]] = []
    for pos in range(n_loops, n):
        spec = (raw_var[pos], plan.lower[pos], plan.upper[pos])
        if spec in specs:
            spec_of_inner.append(specs.index(spec))
        else:
            spec_of_inner.append(len(specs))
            specs.append(spec)

    emit(f"{pad}# IEP over {k} inner vertices; {len(specs)} distinct candidate sets")
    for sid, (base, lo_deps, hi_deps) in enumerate(specs):
        if lo_deps or hi_deps:
            lo_terms = [f"v{j}" for j in lo_deps]
            hi_terms = [f"v{j}" for j in hi_deps]
            lo = (f"max({', '.join(lo_terms)})" if len(lo_terms) > 1 else lo_terms[0]) if lo_terms else "None"
            hi = (f"min({', '.join(hi_terms)})" if len(hi_terms) > 1 else hi_terms[0]) if hi_terms else "None"
            emit(f"{pad}S{sid} = bounded_slice({base}, {lo}, {hi})")
        else:
            emit(f"{pad}S{sid} = {base}")

    # Every block that occurs in any partition, as a frozenset of spec ids.
    blocks_needed: dict[frozenset[int], str] = {}
    partitions = set_partitions(k)
    for partition in partitions:
        for block in partition:
            key = frozenset(spec_of_inner[i] for i in block)
            if key not in blocks_needed:
                blocks_needed[key] = f"B{len(blocks_needed)}"

    bound = [f"v{j}" for j in range(n_loops)]
    for key, bname in blocks_needed.items():
        sids = sorted(key)
        if len(sids) == 1:
            arr = f"S{sids[0]}"
        else:
            args = ", ".join(f"S{s}" for s in sids)
            emit(f"{pad}I{bname} = intersect_many([{args}])")
            arr = f"I{bname}"
        emit(f"{pad}{bname} = len({arr})")
        for v in bound:
            emit(f"{pad}if contains({arr}, {v}):")
            emit(f"{pad}{indent}{bname} -= 1")

    terms: list[str] = []
    for partition in partitions:
        coeff = partition_coefficient(partition)
        names = [
            blocks_needed[frozenset(spec_of_inner[i] for i in block)] for block in partition
        ]
        prod = "*".join(sorted(names))
        if coeff == 1:
            terms.append(f"+ {prod}")
        elif coeff == -1:
            terms.append(f"- {prod}")
        elif coeff > 0:
            terms.append(f"+ {coeff}*{prod}")
        else:
            terms.append(f"- {-coeff}*{prod}")
    expr = " ".join(terms)
    if expr.startswith("+ "):
        expr = expr[2:]
    elif expr.startswith("- "):
        expr = "-" + expr[2:]
    emit(f"{pad}total += {expr}")


def _exec_generated(source: str, plan, func_name: str):
    namespace = {
        "np": np,
        "intersect_many": intersect_many,
        "bounded_slice": bounded_slice,
        "contains": contains,
        "difference": difference,
    }
    # Undirected plans carry the pattern on plan.config; directed plans
    # expose it directly.
    pattern = getattr(getattr(plan, "config", plan), "pattern", None)
    label = getattr(pattern, "name", "") or "pattern"
    exec(compile(source, f"<generated:{label}>", "exec"), namespace)
    return namespace[func_name]


def compile_plan_function(plan: ExecutionPlan) -> GeneratedCounter:
    """Generate, ``exec`` and wrap the specialised counter."""
    source = generate_source(plan)
    function = _exec_generated(source, plan, "generated_count")
    return GeneratedCounter(plan=plan, source=source, function=function)


def compile_induced_function(plan: ExecutionPlan) -> GeneratedCounter:
    """The vertex-induced specialisation of :func:`compile_plan_function`.

    Anti-dependencies (earlier schedule positions the pattern does not
    connect to the current vertex) become sorted ``difference`` filters
    in the generated nest.  IEP plans are rejected: the inclusion–
    exclusion formula assumes edge semantics (the session never plans
    IEP for induced queries).
    """
    if plan.iep_k > 0:
        raise ValueError("induced kernels require an IEP-free plan (iep_k == 0)")
    pattern = plan.config.pattern
    schedule = plan.config.schedule
    antideps = tuple(
        tuple(j for j in range(d) if not pattern.has_edge(v, schedule[j]))
        for d, v in enumerate(schedule)
    )
    source = generate_source(
        plan, func_name="generated_count_induced", antideps=antideps
    )
    function = _exec_generated(source, plan, "generated_count_induced")
    return GeneratedCounter(
        plan=plan, source=source, function=function, mode="induced"
    )


def compile_labeled_function(plan: ExecutionPlan, lpattern) -> GeneratedCounter:
    """The labeled specialisation: per-depth label filters, folded in as
    constants from ``lpattern``.  The returned kernel takes a
    :class:`~repro.graph.labeled.LabeledGraph`.  IEP plans are rejected
    (labeled planning is IEP-free by construction)."""
    if plan.iep_k > 0:
        raise ValueError("labeled kernels require an IEP-free plan (iep_k == 0)")
    depth_labels = tuple(lpattern.labels[v] for v in plan.config.schedule)
    source = generate_source(
        plan, func_name="generated_count_labeled", depth_labels=depth_labels
    )
    function = _exec_generated(source, plan, "generated_count_labeled")
    return GeneratedCounter(
        plan=plan, source=source, function=function, mode="labeled"
    )


def generate_directed_source(
    plan, func_name: str = "generated_count_directed"
) -> str:
    """Emit the specialised counter for one directed plan.

    The directed analogue of :func:`generate_source`: the loop nest is
    unrolled over the plan's schedule, but each depth's raw candidate
    set intersects *out*-CSR rows for its ``out_deps`` and *in*-CSR
    rows for its ``in_deps`` (an antiparallel dependency contributes
    both rows to the intersection).  Row bindings are hoisted to the
    loop that binds their vertex — ``ob{j}``/``ib{j}`` are the out/in
    rows of ``v{j}`` — and restriction bounds inline exactly as in the
    undirected generator (they compare ids, never directions).

    IEP plans are rejected: the session plans directed queries IEP-free
    (``MatchQuery.resolved_use_iep`` is ``False`` outside plain mode),
    and the overcount expansion has no directed generator.
    """
    if plan.iep_k > 0:
        raise ValueError("directed kernels require an IEP-free plan (iep_k == 0)")
    n = plan.n
    indent = "    "
    lines: list[str] = []
    emit = lines.append

    emit(f"def {func_name}(graph):")
    emit(f'    """Generated directed counter: schedule={tuple(plan.schedule)},')
    emit(f"    arcs={tuple(plan.pattern.arcs)},")
    emit(f"    restrictions={sorted(plan.restrictions)}.")
    emit('    """')
    emit("    out_indptr = graph.out_indptr")
    emit("    out_indices = graph.out_indices")
    emit("    in_indptr = graph.in_indptr")
    emit("    in_indices = graph.in_indices")
    emit("    nv = graph.n_vertices")
    emit(f"    if nv < {n}:")
    emit("        return 0")
    emit("    total = 0")
    if any(not (plan.out_deps[d] or plan.in_deps[d]) for d in range(n)):
        emit("    all_vertices = np.arange(nv, dtype=out_indices.dtype)")

    # ------------------------------------------------------------------
    # hoisting plan: which row bindings each bound vertex must expose,
    # and where multi-dependency intersections are computed.
    # ------------------------------------------------------------------
    ob_needed = [
        any(d in plan.out_deps[later] for later in range(d + 1, n)) for d in range(n)
    ]
    ib_needed = [
        any(d in plan.in_deps[later] for later in range(d + 1, n)) for d in range(n)
    ]
    ref_vars = [
        tuple(f"ob{j}" for j in plan.out_deps[d])
        + tuple(f"ib{j}" for j in plan.in_deps[d])
        for d in range(n)
    ]
    raw_var: dict[int, str] = {}
    hoist_at: dict[int, list[int]] = {}
    for d in range(n):
        refs = ref_vars[d]
        if not refs:
            raw_var[d] = "all_vertices"
        elif len(refs) == 1:
            raw_var[d] = refs[0]
        else:
            raw_var[d] = f"c{d}"
            hoist_at.setdefault(
                max(plan.out_deps[d] + plan.in_deps[d]), []
            ).append(d)

    def emit_loop_body_setup(depth: int, pad: str) -> None:
        if ob_needed[depth]:
            emit(
                f"{pad}ob{depth} = "
                f"out_indices[out_indptr[v{depth}]:out_indptr[v{depth}+1]]"
            )
        if ib_needed[depth]:
            emit(
                f"{pad}ib{depth} = "
                f"in_indices[in_indptr[v{depth}]:in_indptr[v{depth}+1]]"
            )
        for d in hoist_at.get(depth, ()):
            args = ", ".join(ref_vars[d])
            emit(f"{pad}c{d} = intersect_many([{args}])")

    # ------------------------------------------------------------------
    # outer loops
    # ------------------------------------------------------------------
    for depth in range(n - 1):
        pad = indent * (depth + 1)
        stmt, cand = _bounds_expr(plan, depth, raw_var[depth])
        if stmt:
            emit(f"{pad}{stmt}")
        emit(f"{pad}for v{depth} in {cand}.tolist():")
        body = indent * (depth + 2)
        distinct = [f"v{depth} != v{j}" for j in range(depth)]
        if distinct:
            emit(f"{body}if not ({' and '.join(distinct)}):")
            emit(f"{body}{indent}continue")
        emit_loop_body_setup(depth, body)

    # ------------------------------------------------------------------
    # innermost loop: count without materialising
    # ------------------------------------------------------------------
    last = n - 1
    pad = indent * (last + 1)
    stmt, cand = _bounds_expr(plan, last, raw_var[last])
    if stmt:
        emit(f"{pad}{stmt}")
    emit(f"{pad}cnt = len({cand})")
    for j in range(last):
        emit(f"{pad}if contains({cand}, v{j}):")
        emit(f"{pad}{indent}cnt -= 1")
    emit(f"{pad}total += cnt")
    emit("    return total")
    return "\n".join(lines) + "\n"


def compile_directed_function(plan) -> GeneratedCounter:
    """Generate, ``exec`` and wrap the directed counter.

    The returned kernel takes a :class:`~repro.graph.digraph.DiGraph`
    and is semantically identical to
    :class:`repro.core.directed.DirectedEngine` on the same plan.
    """
    source = generate_directed_source(plan)
    function = _exec_generated(source, plan, "generated_count_directed")
    return GeneratedCounter(
        plan=plan, source=source, function=function, mode="directed"
    )


def compile_prefix_function(plan: ExecutionPlan, split_depth: int) -> GeneratedPrefixCounter:
    """Generate, ``exec`` and wrap the worker-side prefix kernel.

    Pairs with :meth:`repro.core.engine.Engine.iter_prefixes`: the master
    enumerates prefixes (interpreted — outer loops are a vanishing
    fraction of the work), workers run this specialised kernel per task.
    """
    source = generate_source(
        plan, func_name="generated_count_prefix", split_depth=split_depth
    )
    function = _exec_generated(source, plan, "generated_count_prefix")
    return GeneratedPrefixCounter(
        plan=plan, split_depth=split_depth, source=source, function=function
    )
