"""GraphPi's core: restrictions, schedules, cost model, engine, IEP, API.

This package is the paper's primary contribution.  The flow matches
Figure 3: restriction-set generator + schedule generator →
configurations → performance model → code generation → execution.
"""

from repro.core.restrictions import (
    Restriction,
    RestrictionGenerator,
    RestrictionSet,
    generate_restriction_sets,
    no_conflict,
    restriction_overcount_factor,
    surviving_permutations,
    validate_restriction_set,
)
from repro.core.schedule import (
    Schedule,
    all_schedules,
    dedup_schedules,
    generate_schedules,
    has_independent_suffix,
    independent_suffix_size,
    intersection_free_suffix_length,
    is_connected_prefix,
    schedule_dependencies,
)
from repro.core.config import (
    Configuration,
    ExecutionPlan,
    compile_plan,
    enumerate_configurations,
)
from repro.core.engine import Engine, count_embeddings, enumerate_embeddings
from repro.core.iep import (
    IEPCounter,
    count_distinct_tuples,
    count_distinct_tuples_pairs,
    partition_coefficient,
    set_partitions,
)
from repro.core.perf_model import (
    CostBreakdown,
    PerformanceModel,
    RankedConfiguration,
    cost_breakdown,
    estimate_cost,
    filter_probabilities,
)
from repro.core.codegen import GeneratedCounter, compile_plan_function, generate_source
from repro.core.labeled import (
    LabeledEngine,
    LabeledMatcher,
    labeled_count,
    labeled_restriction_sets,
)
from repro.core.perf_model_ext import (
    ExtendedGraphStats,
    ExtendedPerformanceModel,
    estimate_cost_ext,
    four_cycle_count,
)
from repro.core.api import PatternMatcher, PlanReport, count_pattern, match_pattern
from repro.core.query import MatchQuery, MatchResult
from repro.core.session import MatchSession, PlanEntry, get_session, plan_plain

__all__ = [
    "LabeledEngine",
    "LabeledMatcher",
    "labeled_count",
    "labeled_restriction_sets",
    "ExtendedGraphStats",
    "ExtendedPerformanceModel",
    "estimate_cost_ext",
    "four_cycle_count",
    "Restriction",
    "RestrictionGenerator",
    "RestrictionSet",
    "generate_restriction_sets",
    "no_conflict",
    "restriction_overcount_factor",
    "surviving_permutations",
    "validate_restriction_set",
    "Schedule",
    "all_schedules",
    "dedup_schedules",
    "generate_schedules",
    "has_independent_suffix",
    "independent_suffix_size",
    "intersection_free_suffix_length",
    "is_connected_prefix",
    "schedule_dependencies",
    "Configuration",
    "ExecutionPlan",
    "compile_plan",
    "enumerate_configurations",
    "Engine",
    "count_embeddings",
    "enumerate_embeddings",
    "IEPCounter",
    "count_distinct_tuples",
    "count_distinct_tuples_pairs",
    "partition_coefficient",
    "set_partitions",
    "CostBreakdown",
    "PerformanceModel",
    "RankedConfiguration",
    "cost_breakdown",
    "estimate_cost",
    "filter_probabilities",
    "GeneratedCounter",
    "compile_plan_function",
    "generate_source",
    "PatternMatcher",
    "PlanReport",
    "count_pattern",
    "match_pattern",
    "MatchQuery",
    "MatchResult",
    "MatchSession",
    "PlanEntry",
    "get_session",
    "plan_plain",
]
