"""Engine variants ablating where restriction bounds are applied.

The stock :class:`repro.core.engine.Engine` mirrors the paper's generated
code: candidate sets are intersected *in full* (and hoisted/cached across
inner loops, like ``tmpAB`` in Fig. 5(b)), then restriction bounds slice
the result.  An algebraic identity makes another placement possible::

    bound(A ∩ B) == bound(A) ∩ bound(B)

so the bounds can be pushed *into* the intersection inputs.  The
difference is not cosmetic:

* **slice-after** (paper / stock engine) pays the full ``|A| + |B|``
  merge but can cache the unsliced intersection across sibling loops
  (the bounds change per iteration, the raw intersection does not);
* **slice-before** (:class:`PreSliceEngine`) merges only the bounded
  sub-arrays — for restriction chains over dense sub-patterns (cliques)
  combined with a degeneracy id order, the bounded inputs shrink from
  ``max_degree`` to the graph's degeneracy — but every loop iteration
  re-intersects (the cache key would have to include the bounds, whose
  hit rate is ~0).

Which placement wins is data- and pattern-dependent; the orientation
ablation bench (``bench_ablation_orientation.py``) measures the
crossover.  Counts are provably identical (the identity above), pinned
by the tests.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.engine import Engine
from repro.graph.intersection import bounded_slice, intersect_many


class PreSliceEngine(Engine):
    """Engine applying restriction bounds to intersection *inputs*.

    Same plans, same results; only the evaluation order of bound-and-
    intersect changes (see module docstring).  The single-slot raw
    cache of the stock engine is bypassed — pre-sliced inputs vary with
    the bound values, which change every iteration.
    """

    def candidates(self, depth: int, assigned: Sequence[int]) -> np.ndarray:
        plan = self.plan
        lo: int | None = None
        for j in plan.lower[depth]:
            v = assigned[j]
            if lo is None or v > lo:
                lo = v
        hi: int | None = None
        for j in plan.upper[depth]:
            v = assigned[j]
            if hi is None or v < hi:
                hi = v

        deps = plan.deps[depth]
        if not deps:
            cand = self._all_vertices
            if lo is not None or hi is not None:
                cand = bounded_slice(cand, lo, hi)
            return cand
        arrays = [self.graph.neighbors(assigned[j]) for j in deps]
        if lo is not None or hi is not None:
            arrays = [bounded_slice(a, lo, hi) for a in arrays]
        if len(arrays) == 1:
            return arrays[0]
        return intersect_many(arrays)
