"""Public API: plan and run pattern matching the GraphPi way.

The paper's user contract (§III): *"Users only need to input a pattern
and a data graph in the form of adjacency lists to run GraphPi."*  The
equivalent here:

>>> from repro import PatternMatcher, load_dataset, get_pattern
>>> g = load_dataset("wiki-vote", scale=0.2)
>>> matcher = PatternMatcher(get_pattern("house"))
>>> matcher.count(g)                # counting (IEP-accelerated)
>>> matcher.count(g, use_iep=False) # plain enumeration count
>>> list(matcher.match(g, limit=5)) # list embeddings

``PatternMatcher.plan`` exposes the whole preprocessing pipeline —
restriction-set generation (Algorithm 1), 2-phase schedule generation,
performance-model ranking, code generation — together with its timings
(Table III measures exactly this).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.backend import (
    ExecutionBackend,
    MatchContext,
    get_backend,
    select_backend,
)
from repro.core.codegen import GeneratedCounter, compile_plan_function
from repro.core.config import Configuration, ExecutionPlan, enumerate_configurations
from repro.core.perf_model import PerformanceModel, RankedConfiguration
from repro.core.restrictions import RestrictionSet, generate_restriction_sets
from repro.core.schedule import generate_schedules, independent_suffix_size
from repro.graph.csr import Graph
from repro.graph.stats import GraphStats
from repro.pattern.pattern import Pattern
from repro.utils.timing import Timer


@dataclass(frozen=True)
class PlanReport:
    """Everything preprocessing produced, plus wall-clock timings."""

    pattern: Pattern
    stats: GraphStats
    restriction_sets: tuple[RestrictionSet, ...]
    n_schedules: int
    ranking: tuple[RankedConfiguration, ...]
    chosen: RankedConfiguration
    generated: GeneratedCounter | None
    seconds_restrictions: float
    seconds_schedules: float
    seconds_model: float
    seconds_codegen: float

    @property
    def plan(self) -> ExecutionPlan:
        return self.chosen.plan

    @property
    def seconds_total(self) -> float:
        return (
            self.seconds_restrictions
            + self.seconds_schedules
            + self.seconds_model
            + self.seconds_codegen
        )

    def describe(self) -> str:
        c = self.chosen
        return (
            f"pattern={self.pattern.name or self.pattern!r} "
            f"{len(self.restriction_sets)} restriction sets x "
            f"{self.n_schedules} schedules -> {len(self.ranking)} configurations; "
            f"chose {c.config.describe()} (predicted cost {c.predicted_cost:.3g}); "
            f"preprocessing {self.seconds_total * 1e3:.1f} ms"
        )


class PatternMatcher:
    """Plans and executes matching of one pattern on data graphs.

    Parameters
    ----------
    pattern:
        The pattern to match; must be connected.
    max_restriction_sets:
        Cap on Algorithm 1's enumeration.  Patterns with large
        automorphism groups generate thousands of valid sets (3 072 for
        a 7-vertex near-clique) and each must be scored against every
        schedule; the default of 64 keeps preprocessing sub-second in
        pure Python while retaining plenty of choice.  Pass ``None``
        for the unbounded paper behaviour.
    dedup_schedules:
        Collapse automorphism-equivalent schedules before ranking
        (halves-to-quarters the model's work without changing the
        optimum; see ``repro.core.schedule.dedup_schedules``).
    use_codegen:
        Execute via generated specialised code (the paper's approach)
        instead of the interpreter.  ``use_codegen=False`` also makes
        the *default* backend selection interpret (an explicit
        ``backend=`` still wins).
    backend:
        Default execution backend for :meth:`count`/:meth:`match` — a
        registered name (``"interpreter"``, ``"preslice"``,
        ``"compiled"``, ``"parallel"``), an
        :class:`~repro.core.backend.ExecutionBackend` instance, or
        ``None`` for the compiled-first policy (generated code when the
        plan supports it, interpreter otherwise).
    """

    DEFAULT_MAX_RESTRICTION_SETS = 64

    def __init__(
        self,
        pattern: Pattern,
        *,
        max_restriction_sets: int | None = DEFAULT_MAX_RESTRICTION_SETS,
        dedup_schedules: bool = True,
        use_codegen: bool = True,
        backend: str | ExecutionBackend | None = None,
    ):
        if not pattern.is_connected():
            raise ValueError("pattern matching requires a connected pattern")
        self.pattern = pattern
        self.max_restriction_sets = max_restriction_sets
        self.dedup_schedules = dedup_schedules
        self.use_codegen = use_codegen
        self.backend = backend
        self._restriction_cache: list[RestrictionSet] | None = None
        self._schedule_cache: list | None = None

    # ------------------------------------------------------------------
    # preprocessing
    # ------------------------------------------------------------------
    def restriction_sets(self) -> list[RestrictionSet]:
        if self._restriction_cache is None:
            self._restriction_cache = generate_restriction_sets(
                self.pattern, max_sets=self.max_restriction_sets
            )
        return self._restriction_cache

    def schedules(self) -> list:
        if self._schedule_cache is None:
            self._schedule_cache = generate_schedules(
                self.pattern, dedup_automorphic=self.dedup_schedules
            )
        return self._schedule_cache

    def plan(
        self,
        graph: Graph | None = None,
        *,
        stats: GraphStats | None = None,
        use_iep: bool = False,
        codegen: bool | None = None,
    ) -> PlanReport:
        """Run the full preprocessing pipeline and pick a configuration.

        Provide either a graph (stats are computed) or precomputed
        ``stats``.  ``use_iep`` asks the model to score configurations
        with the innermost independent loops replaced by IEP.
        """
        if stats is None:
            if graph is None:
                raise ValueError("plan() needs a graph or precomputed GraphStats")
            stats = GraphStats.of(graph)

        with Timer() as t_res:
            res_sets = self.restriction_sets()
        with Timer() as t_sched:
            schedules = self.schedules()
        with Timer() as t_model:
            configs = enumerate_configurations(self.pattern, schedules, res_sets)
            model = PerformanceModel(stats)
            iep_k = independent_suffix_size(self.pattern) if use_iep else 0
            ranking = model.rank(configs, iep_k=iep_k)
        chosen = ranking[0]
        generated = None
        do_codegen = self.use_codegen if codegen is None else codegen
        with Timer() as t_gen:
            if do_codegen:
                generated = compile_plan_function(chosen.plan)
        return PlanReport(
            pattern=self.pattern,
            stats=stats,
            restriction_sets=tuple(res_sets),
            n_schedules=len(schedules),
            ranking=tuple(ranking),
            chosen=chosen,
            generated=generated,
            seconds_restrictions=t_res.elapsed,
            seconds_schedules=t_sched.elapsed,
            seconds_model=t_model.elapsed,
            seconds_codegen=t_gen.elapsed,
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _select(
        self,
        ctx: MatchContext,
        backend: str | ExecutionBackend | None,
        *,
        for_enumeration: bool = False,
    ) -> ExecutionBackend:
        requested = backend if backend is not None else self.backend
        if requested is None and not self.use_codegen and ctx.generated is None:
            # The user opted out of codegen: default to the interpreter
            # rather than compiling behind their back.
            return get_backend("interpreter")
        return select_backend(ctx, requested, for_enumeration=for_enumeration)

    def count(
        self,
        graph: Graph,
        *,
        use_iep: bool = True,
        report: PlanReport | None = None,
        backend: str | ExecutionBackend | None = None,
    ) -> int:
        """Count distinct embeddings of the pattern in ``graph``.

        ``backend`` overrides the matcher's default for this call; all
        registered backends return identical counts (the equivalence
        tests pin this), they only differ in how the loop nest runs.
        """
        rep = report or self.plan(graph, use_iep=use_iep)
        ctx = MatchContext(graph=graph, plan=rep.plan, generated=rep.generated)
        return self._select(ctx, backend).count(ctx)

    def match(
        self,
        graph: Graph,
        *,
        limit: int | None = None,
        report: PlanReport | None = None,
        backend: str | ExecutionBackend | None = None,
    ):
        """Yield embeddings as tuples indexed by pattern vertex.

        Enumeration needs explicit inner loops, so IEP plans are
        recompiled with ``iep_k=0`` and counting-only backends (e.g.
        ``compiled``) automatically fall back to the interpreter.
        """
        rep = report or self.plan(graph, use_iep=False)
        plan = rep.plan
        if plan.iep_k:
            plan = rep.chosen.config.compile(iep_k=0)
        ctx = MatchContext(graph=graph, plan=plan)
        chosen = self._select(ctx, backend, for_enumeration=True)
        return chosen.enumerate_embeddings(ctx, limit=limit)


# ---------------------------------------------------------------------------
# module-level one-shots
# ---------------------------------------------------------------------------
def count_pattern(
    graph: Graph,
    pattern: Pattern,
    *,
    use_iep: bool = True,
    backend: str | ExecutionBackend | None = None,
    **kwargs,
) -> int:
    """One-shot: plan + count (through the selected execution backend)."""
    return PatternMatcher(pattern, backend=backend, **kwargs).count(
        graph, use_iep=use_iep
    )


def match_pattern(
    graph: Graph,
    pattern: Pattern,
    *,
    limit: int | None = None,
    backend: str | ExecutionBackend | None = None,
    **kwargs,
):
    """One-shot: plan + enumerate embeddings."""
    return PatternMatcher(pattern, backend=backend, **kwargs).match(graph, limit=limit)
