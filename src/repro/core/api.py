"""Public API: plan and run pattern matching the GraphPi way.

The paper's user contract (§III): *"Users only need to input a pattern
and a data graph in the form of adjacency lists to run GraphPi."*  The
modern surface is the query/session pair::

>>> from repro import MatchQuery, MatchSession, load_dataset, get_pattern
>>> session = MatchSession(load_dataset("wiki-vote", scale=0.2))
>>> session.count(MatchQuery(get_pattern("house")))   # plans + counts
>>> session.count(MatchQuery(get_pattern("house")))   # plan-cache hit

This module keeps the historical entry points — :class:`PatternMatcher`,
:func:`count_pattern`, :func:`match_pattern` — as **thin shims** over
that session layer: they build a :class:`~repro.core.query.MatchQuery`
and dispatch through :func:`~repro.core.session.get_session`, so
repeated counts against the same graph object reuse cached plans
instead of re-running the preprocessing pipeline (Algorithm 1
restrictions, 2-phase schedules, model ranking, code generation — what
Table III shows is expensive) on every call.

``PatternMatcher.plan`` still exposes the whole preprocessing pipeline
together with its timings (Table III measures exactly this); the
:class:`~repro.core.session.PlanReport` it returns now lives in the
session layer and is re-exported here unchanged.
"""

from __future__ import annotations

from repro.core.backend import ExecutionBackend, MatchContext
from repro.core.query import MatchQuery, MatchResult  # noqa: F401 (re-export)
from repro.core.restrictions import RestrictionSet, generate_restriction_sets
from repro.core.schedule import generate_schedules
from repro.core.session import (  # noqa: F401 (PlanReport re-exported)
    MatchSession,
    PlanEntry,
    PlanReport,
    get_session,
    plan_plain,
    resolve_execution_backend,
)
from repro.graph.csr import Graph
from repro.graph.stats import GraphStats
from repro.pattern.pattern import Pattern


class PatternMatcher:
    """Plans and executes matching of one pattern on data graphs.

    A thin shim over the session layer: each :meth:`count`/:meth:`match`
    builds a declarative :class:`~repro.core.query.MatchQuery` and runs
    it through the shared :class:`~repro.core.session.MatchSession` of
    the target graph, so identical repeat calls hit the plan cache.

    Parameters
    ----------
    pattern:
        The pattern to match; must be connected.
    max_restriction_sets:
        Cap on Algorithm 1's enumeration.  Patterns with large
        automorphism groups generate thousands of valid sets (3 072 for
        a 7-vertex near-clique) and each must be scored against every
        schedule; the default of 64 keeps preprocessing sub-second in
        pure Python while retaining plenty of choice.  Pass ``None``
        for the unbounded paper behaviour.
    dedup_schedules:
        Collapse automorphism-equivalent schedules before ranking
        (halves-to-quarters the model's work without changing the
        optimum; see ``repro.core.schedule.dedup_schedules``).
    use_codegen:
        Execute via generated specialised code (the paper's approach)
        instead of the interpreter.  ``use_codegen=False`` also makes
        the *default* backend selection interpret (an explicit
        ``backend=`` still wins).
    backend:
        Default execution backend for :meth:`count`/:meth:`match` — a
        registered name (``"interpreter"``, ``"preslice"``,
        ``"compiled"``, ``"parallel"``), an
        :class:`~repro.core.backend.ExecutionBackend` instance, or
        ``None`` for the compiled-first policy (generated code when the
        plan supports it, interpreter otherwise).
    """

    DEFAULT_MAX_RESTRICTION_SETS = 64

    def __init__(
        self,
        pattern: Pattern,
        *,
        max_restriction_sets: int | None = DEFAULT_MAX_RESTRICTION_SETS,
        dedup_schedules: bool = True,
        use_codegen: bool = True,
        backend: str | ExecutionBackend | None = None,
    ):
        if not pattern.is_connected():
            raise ValueError("pattern matching requires a connected pattern")
        self.pattern = pattern
        self.max_restriction_sets = max_restriction_sets
        self.dedup_schedules = dedup_schedules
        self.use_codegen = use_codegen
        self.backend = backend
        self._restriction_cache: list[RestrictionSet] | None = None
        self._schedule_cache: list | None = None

    def _query(
        self,
        *,
        use_iep: bool | None,
        codegen: bool | None = None,
        backend: str | ExecutionBackend | None = None,
    ) -> MatchQuery:
        """The declarative form of one call against this matcher.

        The effective backend preference (call-level wins over the
        matcher default) is part of the query so planning can consult
        its capabilities — e.g. an IEP-free plan for ``vectorised``.
        """
        return MatchQuery(
            pattern=self.pattern,
            mode="plain",
            semantics="edge",
            use_iep=use_iep,
            backend=backend if backend is not None else self.backend,
            max_restriction_sets=self.max_restriction_sets,
            dedup_schedules=self.dedup_schedules,
            use_codegen=self.use_codegen if codegen is None else codegen,
        )

    # ------------------------------------------------------------------
    # preprocessing
    # ------------------------------------------------------------------
    def restriction_sets(self) -> list[RestrictionSet]:
        if self._restriction_cache is None:
            self._restriction_cache = generate_restriction_sets(
                self.pattern, max_sets=self.max_restriction_sets
            )
        return self._restriction_cache

    def schedules(self) -> list:
        if self._schedule_cache is None:
            self._schedule_cache = generate_schedules(
                self.pattern, dedup_automorphic=self.dedup_schedules
            )
        return self._schedule_cache

    def plan(
        self,
        graph: Graph | None = None,
        *,
        stats: GraphStats | None = None,
        use_iep: bool = False,
        codegen: bool | None = None,
    ) -> PlanReport:
        """Run the full preprocessing pipeline and pick a configuration.

        Provide either a graph (stats are computed once per session and
        the resulting plan is cached there) or precomputed ``stats``
        (planned directly, no cache).  ``use_iep`` asks the model to
        score configurations with the innermost independent loops
        replaced by IEP.
        """
        if stats is None:
            if graph is None:
                raise ValueError("plan() needs a graph or precomputed GraphStats")
            entry = get_session(graph).plan_for(
                self._query(use_iep=use_iep, codegen=codegen)
            )
            return entry.report
        do_codegen = self.use_codegen if codegen is None else codegen
        return plan_plain(
            self.pattern,
            stats,
            use_iep=use_iep,
            max_restriction_sets=self.max_restriction_sets,
            dedup_schedules=self.dedup_schedules,
            codegen=do_codegen,
            restriction_sets=self.restriction_sets(),
            schedules=self.schedules(),
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _select(
        self,
        ctx: MatchContext,
        backend: str | ExecutionBackend | None,
        *,
        for_enumeration: bool = False,
    ) -> ExecutionBackend:
        # The explicit-report execution paths share the session layer's
        # selection policy (one implementation, no drift).
        requested = backend if backend is not None else self.backend
        return resolve_execution_backend(
            ctx,
            requested,
            use_codegen=self.use_codegen,
            for_enumeration=for_enumeration,
        )

    def count(
        self,
        graph: Graph,
        *,
        use_iep: bool | None = None,
        report: PlanReport | None = None,
        backend: str | ExecutionBackend | None = None,
    ) -> int:
        """Count distinct embeddings of the pattern in ``graph``.

        ``backend`` overrides the matcher's default for this call; all
        registered backends return identical counts (the equivalence
        tests pin this), they only differ in how the loop nest runs.
        ``use_iep=None`` (the default) resolves per backend capability:
        IEP on, unless the preferred backend cannot execute IEP-suffix
        plans (``vectorised``); an explicit bool forces it.  An explicit
        ``report`` executes that exact plan; otherwise the graph's
        session plans once and replays the cached plan on every
        identical call.
        """
        if report is not None:
            ctx = MatchContext(graph=graph, plan=report.plan, generated=report.generated)
            return self._select(ctx, backend).count(ctx)
        result = get_session(graph).count(
            self._query(use_iep=use_iep, backend=backend)
        )
        return result.count

    def match(
        self,
        graph: Graph,
        *,
        limit: int | None = None,
        report: PlanReport | None = None,
        backend: str | ExecutionBackend | None = None,
    ):
        """Yield embeddings as tuples indexed by pattern vertex.

        Enumeration needs explicit inner loops, so IEP plans are
        recompiled with ``iep_k=0`` and counting-only backends (e.g.
        ``compiled``) automatically fall back to the interpreter.
        """
        if report is not None:
            plan = report.plan
            if plan.iep_k:
                plan = report.chosen.config.compile(iep_k=0)
            ctx = MatchContext(graph=graph, plan=plan)
            chosen = self._select(ctx, backend, for_enumeration=True)
            return chosen.enumerate_embeddings(ctx, limit=limit)
        return get_session(graph).enumerate(
            self._query(use_iep=False, backend=backend), limit=limit
        )

    def result(
        self,
        graph: Graph,
        *,
        use_iep: bool | None = None,
        backend: str | ExecutionBackend | None = None,
    ) -> MatchResult:
        """Like :meth:`count` but returning the structured
        :class:`~repro.core.query.MatchResult` (backend used, plan
        provenance, cache hit/miss, timings)."""
        return get_session(graph).count(self._query(use_iep=use_iep, backend=backend))


# ---------------------------------------------------------------------------
# module-level one-shots
# ---------------------------------------------------------------------------
def count_pattern(
    graph: Graph,
    pattern: Pattern,
    *,
    use_iep: bool | None = None,
    backend: str | ExecutionBackend | None = None,
    **kwargs,
) -> int:
    """One-shot: plan + count (through the selected execution backend).

    A shim over the graph's shared session — repeated one-shot calls
    with the same pattern and graph hit the plan cache.
    """
    return PatternMatcher(pattern, backend=backend, **kwargs).count(
        graph, use_iep=use_iep
    )


def match_pattern(
    graph: Graph,
    pattern: Pattern,
    *,
    limit: int | None = None,
    backend: str | ExecutionBackend | None = None,
    **kwargs,
):
    """One-shot: plan + enumerate embeddings."""
    return PatternMatcher(pattern, backend=backend, **kwargs).match(graph, limit=limit)


def match_query(
    graph,
    query: MatchQuery | Pattern,
    *,
    backend: str | ExecutionBackend | None = None,
) -> MatchResult:
    """One-shot declarative entry point: run ``query`` against ``graph``.

    Accepts any graph kind the session layer supports (plain, labeled,
    directed) and any :class:`~repro.core.query.MatchQuery` (or a bare
    pattern, which is wrapped).  Equivalent to
    ``get_session(graph).count(query, backend=backend)``; a call-level
    ``backend`` wins over the query's own preference.
    """
    return get_session(graph).count(query, backend=backend)
