"""The pattern-matching execution engine (nested-loop DFS).

This is the interpreter for :class:`repro.core.config.ExecutionPlan`:
one loop per scheduled pattern vertex, candidate sets formed by
intersecting the sorted neighbourhoods of already-bound neighbours
(paper Fig. 5(b)), restrictions enforced as binary-search range slices
on the sorted candidate stream (generalising the paper's ``break``), and
optionally the innermost ``iep_k`` loops replaced by Inclusion–Exclusion
counting (§IV-D).

Three modes:

* ``count()``        — embedding count only (last-loop shortcut: the
  deepest loop never iterates, its candidates are just counted);
* ``enumerate_embeddings()`` — yields embeddings as tuples indexed by
  *pattern vertex* (not schedule position);
* prefix tasks       — ``iter_prefixes``/``count_prefix`` split the
  outermost loops from the inner ones, which is exactly the paper's
  master/worker task partitioning (§IV-E).
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.core.config import Configuration, ExecutionPlan
from repro.core.iep import IEPCounter
from repro.graph.csr import Graph
from repro.graph.intersection import (
    VERTEX_DTYPE,
    bounded_slice,
    contains,
    intersect_many,
)


class Engine:
    """Executes one plan against one graph."""

    def __init__(self, graph: Graph, plan: ExecutionPlan):
        if plan.n > graph.n_vertices:
            # Not an error: there are simply no embeddings.  We keep the
            # engine constructible so counting returns 0 uniformly.
            pass
        self.graph = graph
        self.plan = plan
        self._all_vertices = graph.vertices()
        self._iep = IEPCounter(graph, plan) if plan.iep_k > 0 else None
        # Loop-invariant hoisting (paper Fig. 5(b): tmpAB is computed in
        # loop B and reused across the whole D loop).  The raw candidate
        # intersection of depth d only depends on the values bound at
        # deps[d]; a single-slot cache per depth exploits the DFS order.
        self._raw_cache: list[tuple | None] = [None] * plan.n

    def _raw_candidates(self, depth: int, assigned: Sequence[int]) -> np.ndarray:
        deps = self.plan.deps[depth]
        if not deps:
            return self._all_vertices
        if len(deps) == 1:
            return self.graph.neighbors(assigned[deps[0]])
        key = tuple(assigned[j] for j in deps)
        slot = self._raw_cache[depth]
        if slot is not None and slot[0] == key:
            return slot[1]
        arr = intersect_many([self.graph.neighbors(v) for v in key])
        self._raw_cache[depth] = (key, arr)
        return arr

    # ------------------------------------------------------------------
    # candidate computation
    # ------------------------------------------------------------------
    def candidates(self, depth: int, assigned: Sequence[int]) -> np.ndarray:
        """Sorted candidate array for loop ``depth`` (before used-vertex
        exclusion, which the loops handle inline)."""
        plan = self.plan
        cand = self._raw_candidates(depth, assigned)
        lo: int | None = None
        for j in plan.lower[depth]:
            v = assigned[j]
            if lo is None or v > lo:
                lo = v
        hi: int | None = None
        for j in plan.upper[depth]:
            v = assigned[j]
            if hi is None or v < hi:
                hi = v
        if lo is not None or hi is not None:
            cand = bounded_slice(cand, lo, hi)
        return cand

    # ------------------------------------------------------------------
    # counting
    # ------------------------------------------------------------------
    def count(self) -> int:
        """Total number of embeddings under this plan.

        When the plan carries restrictions that eliminate all
        automorphisms, this is the number of *distinct* embeddings; with
        no restrictions it counts every automorphic image separately.
        """
        if self.plan.n > self.graph.n_vertices:
            return 0
        raw = self._count_rec(0, [])
        if self.plan.iep_k > 0 and self.plan.iep_overcount != 1:
            q, r = divmod(raw, self.plan.iep_overcount)
            if r:
                raise AssertionError(
                    "IEP overcount correction must divide evenly: "
                    f"{raw} / {self.plan.iep_overcount}"
                )
            return q
        return raw

    def _count_rec(self, depth: int, assigned: list[int]) -> int:
        plan = self.plan
        cand = self.candidates(depth, assigned)
        if len(cand) == 0:
            return 0
        last_loop = plan.n_loops - 1
        if depth == last_loop:
            if plan.iep_k > 0:
                total = 0
                for v in cand:
                    vi = int(v)
                    if vi in assigned:
                        continue
                    assigned.append(vi)
                    total += self._iep.count_inner(assigned)
                    assigned.pop()
                return total
            # plain innermost loop: count candidates not already used
            used = sum(1 for a in assigned if contains(cand, a))
            return len(cand) - used
        total = 0
        for v in cand:
            vi = int(v)
            if vi in assigned:
                continue
            assigned.append(vi)
            total += self._count_rec(depth + 1, assigned)
            assigned.pop()
        return total

    # ------------------------------------------------------------------
    # enumeration
    # ------------------------------------------------------------------
    def enumerate_embeddings(self, limit: int | None = None) -> Iterator[tuple[int, ...]]:
        """Yield embeddings as tuples ``emb[pattern_vertex] = data vertex``.

        Enumeration is incompatible with IEP (IEP never materialises the
        inner vertices) — compile the plan with ``iep_k=0`` to list.
        """
        if self.plan.iep_k > 0:
            raise ValueError("enumeration requires a plan compiled with iep_k=0")
        if self.plan.n > self.graph.n_vertices:
            return
        schedule = self.plan.config.schedule
        inverse = [0] * len(schedule)
        for pos, v in enumerate(schedule):
            inverse[v] = pos
        remaining = float("inf") if limit is None else limit
        for assigned in self._enumerate_rec(0, []):
            if remaining <= 0:
                return
            remaining -= 1
            yield tuple(assigned[inverse[v]] for v in range(len(schedule)))

    def _enumerate_rec(self, depth: int, assigned: list[int]) -> Iterator[list[int]]:
        cand = self.candidates(depth, assigned)
        last = self.plan.n - 1
        if depth == last:
            for v in cand:
                vi = int(v)
                if vi not in assigned:
                    assigned.append(vi)
                    yield assigned
                    assigned.pop()
            return
        for v in cand:
            vi = int(v)
            if vi in assigned:
                continue
            assigned.append(vi)
            yield from self._enumerate_rec(depth + 1, assigned)
            assigned.pop()

    # ------------------------------------------------------------------
    # prefix tasks (distributed execution, §IV-E)
    # ------------------------------------------------------------------
    def iter_prefixes(self, split_depth: int) -> Iterator[tuple[int, ...]]:
        """Enumerate outer-loop value tuples down to ``split_depth`` loops.

        This is the master thread of the paper: it executes the outer
        loops and packs their values into tasks.  Restrictions and
        dependencies at those depths are already applied, so workers
        receive only viable prefixes.
        """
        if self.plan.n_loops < 2:
            raise ValueError(
                "prefix splitting needs at least two executed loops; this plan "
                f"has n_loops={self.plan.n_loops} (IEP absorbed the rest)"
            )
        if not 1 <= split_depth < self.plan.n_loops:
            raise ValueError(
                f"split_depth must be in [1, {self.plan.n_loops - 1}], got {split_depth}"
            )

        def rec(depth: int, assigned: list[int]) -> Iterator[tuple[int, ...]]:
            if depth == split_depth:
                yield tuple(assigned)
                return
            for v in self.candidates(depth, assigned):
                vi = int(v)
                if vi in assigned:
                    continue
                assigned.append(vi)
                yield from rec(depth + 1, assigned)
                assigned.pop()

        yield from rec(0, [])

    def count_prefix(self, prefix: tuple[int, ...]) -> int:
        """Count embeddings under an outer-loop prefix (one worker task).

        The returned value is *raw* (no IEP overcount division) so that
        partial sums from many tasks can be added before the single
        final division — mirroring the distributed implementation.
        """
        return self._count_rec(len(prefix), list(prefix))

    def finalize_count(self, raw_total: int) -> int:
        """Apply the IEP overcount divisor to a sum of task results."""
        if self.plan.iep_k > 0 and self.plan.iep_overcount != 1:
            q, r = divmod(raw_total, self.plan.iep_overcount)
            if r:
                raise AssertionError(
                    f"IEP overcount must divide the total: {raw_total} / "
                    f"{self.plan.iep_overcount}"
                )
            return q
        return raw_total


# ---------------------------------------------------------------------------
# convenience wrappers
# ---------------------------------------------------------------------------
def count_embeddings(graph: Graph, plan_or_config) -> int:
    """Count embeddings for a plan or configuration on ``graph``."""
    plan = _as_plan(plan_or_config)
    return Engine(graph, plan).count()


def enumerate_embeddings(graph: Graph, plan_or_config, limit: int | None = None):
    plan = _as_plan(plan_or_config)
    return Engine(graph, plan).enumerate_embeddings(limit=limit)


def _as_plan(plan_or_config) -> ExecutionPlan:
    if isinstance(plan_or_config, ExecutionPlan):
        return plan_or_config
    if isinstance(plan_or_config, Configuration):
        return plan_or_config.compile()
    raise TypeError(f"expected ExecutionPlan or Configuration, got {type(plan_or_config)!r}")
