"""Calibrating the cost model's abstract units into wall-clock seconds.

The paper's model (§IV-C) is deliberately *relative*: it ranks
configurations, and ranking only needs consistent units.  Two practical
workflows need absolute predictions too:

* budgeting — "is exact counting or ASAP-style sampling cheaper for my
  target error?" (the comparison `repro.approx.elp` sets up);
* simulator feeding — the Figure-12 cluster simulator replays per-task
  costs; a calibrated model can *predict* them for unseen patterns.

The abstract cost sums two kinds of work the host machine prices very
differently in pure Python:

* per-iteration loop overhead (the ``LOOP_OVERHEAD`` term) — Python
  interpreter time per DFS node;
* per-element intersection work (the ``c_i`` terms) — NumPy merge
  throughput, orders of magnitude cheaper per unit.

:func:`calibrate` measures both constants with micro-probes on the
actual machine (a tight engine loop over a seeded graph; a set of
sorted-array merges), and :class:`CalibratedModel` applies them to any
plan's cost breakdown.  Predictions are order-of-magnitude tools, not
stopwatches — the tests pin ranking preservation and a generous absolute
band, which is exactly how such a calibration is usable in practice.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.config import Configuration, ExecutionPlan
from repro.core.engine import Engine
from repro.core.perf_model import LOOP_OVERHEAD, cost_breakdown
from repro.graph.generators import erdos_renyi
from repro.graph.intersection import intersect
from repro.graph.stats import GraphStats
from repro.pattern.catalog import triangle


@dataclass(frozen=True)
class HostConstants:
    """Measured per-unit costs of this host (seconds per unit)."""

    seconds_per_iteration: float
    seconds_per_merge_element: float

    def describe(self) -> str:
        return (
            f"loop iteration ≈ {self.seconds_per_iteration * 1e6:.2f} µs, "
            f"merge element ≈ {self.seconds_per_merge_element * 1e9:.1f} ns"
        )


def _probe_merge_throughput(rng: np.random.Generator) -> float:
    """Seconds per element of sorted-merge intersection input."""
    size = 20_000
    a = np.unique(rng.integers(0, 10 * size, size=size).astype(np.int64))
    b = np.unique(rng.integers(0, 10 * size, size=size).astype(np.int64))
    rounds = 30
    t0 = time.perf_counter()
    for _ in range(rounds):
        intersect(a, b)
    elapsed = time.perf_counter() - t0
    return elapsed / (rounds * (len(a) + len(b)))


def _probe_loop_overhead() -> float:
    """Seconds per DFS iteration of the interpreting engine.

    Runs the triangle count on a seeded ER graph and divides by the
    model's own iteration estimate for that plan — self-consistency is
    the point: the constant absorbs everything the abstract unit hides.
    """
    graph = erdos_renyi(400, 0.05, seed=7)
    pattern = triangle()
    config = Configuration(
        pattern, (0, 1, 2), frozenset({(1, 0), (2, 1)})
    )
    plan = config.compile()
    stats = GraphStats.of(graph)
    breakdown = cost_breakdown(plan, stats)
    t0 = time.perf_counter()
    Engine(graph, plan).count()
    elapsed = time.perf_counter() - t0
    # subtract nothing: at this density merge work is negligible next to
    # interpreter overhead, so the whole abstract cost prices iterations.
    return elapsed / max(breakdown.total, 1.0)


def calibrate(seed: int = 2020) -> HostConstants:
    """Measure this host's constants (a few hundred ms of probing)."""
    rng = np.random.default_rng(seed)
    return HostConstants(
        seconds_per_iteration=_probe_loop_overhead(),
        seconds_per_merge_element=_probe_merge_throughput(rng),
    )


class CalibratedModel:
    """The §IV-C model with measured per-unit prices attached.

    ``predict_seconds`` splits a plan's cost recursion into iteration
    units and merge-element units, pricing each with the host constants.
    Ranking by predicted seconds coincides with the abstract model's
    ranking whenever merge and iteration work scale together (they do
    within one pattern's configuration space), so this is a strict
    refinement for cross-pattern/absolute questions.
    """

    def __init__(self, stats: GraphStats, constants: HostConstants | None = None):
        self.stats = stats
        self.constants = constants or calibrate()

    def predict_seconds(self, plan: ExecutionPlan) -> float:
        breakdown = cost_breakdown(plan, self.stats)
        n = plan.n
        ls, fs, cs = breakdown.loop_sizes, breakdown.filter_probs, breakdown.intersection_costs

        n_loops = plan.n_loops
        iter_cost = 0.0  # abstract iteration units
        merge_cost = 0.0  # abstract merge-element units

        # Mirror the recursion, accumulating the two unit kinds
        # separately: visits(i) = ∏_{j<i} l_j (1-f_j).
        visits = 1.0
        for i in range(n_loops):
            iterations = visits * ls[i] * (1.0 - fs[i])
            iter_cost += iterations * LOOP_OVERHEAD
            merge_cost += visits * cs[i]
            visits = iterations
        if plan.iep_k > 0:
            for i in range(n_loops, n):
                merge_cost += visits * (cs[i] + ls[i])
                iter_cost += visits * LOOP_OVERHEAD
        return (
            iter_cost * self.constants.seconds_per_iteration
            + merge_cost * self.constants.seconds_per_merge_element
        )

    def predict_config_seconds(self, config: Configuration, iep_k: int = 0) -> float:
        return self.predict_seconds(config.compile(iep_k=iep_k))
