"""The graph-bound session layer: plan once, execute many.

Table III of the paper measures what preprocessing costs — Algorithm 1
restriction generation, 2-phase schedule enumeration, performance-model
ranking and code generation all run *before* the first data vertex is
touched.  A production service answering many pattern queries against
the same graph must not pay that price per request, so this module
binds the whole pipeline to a graph:

* :class:`MatchSession` — owns one data graph (plain
  :class:`~repro.graph.csr.Graph`,
  :class:`~repro.graph.labeled.LabeledGraph` or
  :class:`~repro.graph.digraph.DiGraph`) and a **plan cache** keyed by
  ``(query fingerprint, graph stats signature)``.  ``count(query)``,
  ``enumerate(query, limit=)`` and ``count_many([queries])`` plan on
  first sight of a fingerprint and replay the compiled plan on every
  repeat — preprocessing is amortised to zero on cache hits.
* :func:`plan_plain` — the plain-mode preprocessing pipeline (restriction
  sets → schedules → configurations → model ranking → codegen), the
  function :class:`repro.core.api.PatternMatcher` now shims over.
* :func:`get_session` — a per-process registry handing out one session
  per live graph object, so one-shot helpers (``count_pattern``,
  ``motif_census``, the CLI) share plans without threading a session
  through every signature.

Cache key and invalidation
--------------------------
The cache key is ``(MatchQuery.fingerprint, stats_signature)``.  The
stats signature is derived from the graph's structural statistics
(|V|, |E|, triangle count, max degree — exactly what the §IV-C
performance model consumes — plus the label array digest for labeled
graphs and the arc count for digraphs).  It is computed **once per
session**, which is sound because every graph type in this repository
is immutable; a session offers no invalidation hooks for in-place
mutation (don't mutate CSR arrays behind a session's back).  Updated
data arrives as a *new* graph object (e.g. a
:class:`~repro.graph.dynamic.DynamicGraph` snapshot), which gets its
own session — and because the signature participates in every key,
entries from different graphs can never collide even if plan caches
are merged or shared externally.  ``clear_cache()`` drops all entries
explicitly.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Iterator, NamedTuple

from repro.core.backend import (
    ExecutionBackend,
    MatchContext,
    capabilities_of,
    compile_for_context,
    get_backend,
    select_backend,
)
from repro.core.codegen import (
    GeneratedCounter,
    compile_directed_function,
    compile_induced_function,
    compile_labeled_function,
    compile_plan_function,
)
from repro.core.config import ExecutionPlan, enumerate_configurations
from repro.core.perf_model import PerformanceModel, RankedConfiguration
from repro.core.query import MatchQuery, MatchResult, as_query
from repro.core.restrictions import RestrictionSet, generate_restriction_sets
from repro.core.schedule import generate_schedules, independent_suffix_size
from repro.graph.csr import Graph
from repro.graph.digraph import DiGraph
from repro.graph.labeled import LabeledGraph
from repro.graph.stats import GraphStats
from repro.obs import metrics as obs_metrics
from repro.obs.trace import collect, span
from repro.pattern.pattern import Pattern
from repro.utils.timing import Timer


# ---------------------------------------------------------------------------
# the plain-mode preprocessing pipeline (moved here from core.api)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PlanReport:
    """Everything preprocessing produced, plus wall-clock timings."""

    pattern: Pattern
    stats: GraphStats
    restriction_sets: tuple[RestrictionSet, ...]
    n_schedules: int
    ranking: tuple[RankedConfiguration, ...]
    chosen: RankedConfiguration
    generated: GeneratedCounter | None
    seconds_restrictions: float
    seconds_schedules: float
    seconds_model: float
    seconds_codegen: float

    @property
    def plan(self) -> ExecutionPlan:
        return self.chosen.plan

    @property
    def seconds_total(self) -> float:
        return (
            self.seconds_restrictions
            + self.seconds_schedules
            + self.seconds_model
            + self.seconds_codegen
        )

    def describe(self) -> str:
        c = self.chosen
        return (
            f"pattern={self.pattern.name or self.pattern!r} "
            f"{len(self.restriction_sets)} restriction sets x "
            f"{self.n_schedules} schedules -> {len(self.ranking)} configurations; "
            f"chose {c.config.describe()} (predicted cost {c.predicted_cost:.3g}); "
            f"preprocessing {self.seconds_total * 1e3:.1f} ms"
        )


def plan_plain(
    pattern: Pattern,
    stats: GraphStats,
    *,
    use_iep: bool = False,
    max_restriction_sets: int | None = 64,
    dedup_schedules: bool = True,
    codegen: bool = True,
    restriction_sets: list[RestrictionSet] | None = None,
    schedules: list | None = None,
) -> PlanReport:
    """Run the full plain-mode preprocessing pipeline and pick a plan.

    ``restriction_sets``/``schedules`` accept precomputed inputs (the
    ``PatternMatcher`` per-pattern caches); otherwise both are generated
    here.  ``use_iep`` asks the model to score configurations with the
    innermost independent loops replaced by IEP.
    """
    with Timer() as t_res, span("restrictions") as sp:
        if restriction_sets is None:
            restriction_sets = generate_restriction_sets(
                pattern, max_sets=max_restriction_sets
            )
        sp.set(n_sets=len(restriction_sets))
    with Timer() as t_sched, span("schedules") as sp:
        if schedules is None:
            schedules = generate_schedules(
                pattern, dedup_automorphic=dedup_schedules
            )
        sp.set(n_schedules=len(schedules))
    with Timer() as t_model, span("model") as sp:
        configs = enumerate_configurations(pattern, schedules, restriction_sets)
        model = PerformanceModel(stats)
        iep_k = independent_suffix_size(pattern) if use_iep else 0
        ranking = model.rank(configs, iep_k=iep_k)
        sp.set(n_configs=len(configs), iep_k=iep_k)
    chosen = ranking[0]
    generated = None
    with Timer() as t_gen, span("codegen", enabled=codegen):
        if codegen:
            generated = compile_plan_function(chosen.plan)
    return PlanReport(
        pattern=pattern,
        stats=stats,
        restriction_sets=tuple(restriction_sets),
        n_schedules=len(schedules),
        ranking=tuple(ranking),
        chosen=chosen,
        generated=generated,
        seconds_restrictions=t_res.elapsed,
        seconds_schedules=t_sched.elapsed,
        seconds_model=t_model.elapsed,
        seconds_codegen=t_gen.elapsed,
    )


# ---------------------------------------------------------------------------
# cached plans
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PlanEntry:
    """One cached, executable plan: everything needed to build a context.

    ``report`` keeps the mode-specific plan report (a :class:`PlanReport`,
    :class:`~repro.core.labeled.LabeledPlanReport` or
    :class:`~repro.core.directed.DirectedPlanReport`) for provenance and
    introspection — including, for plain plans, the full configuration
    ranking that ``PatternMatcher.plan`` exposes.  Retention is bounded:
    at most ``MatchSession.max_plans`` entries per session (LRU) and at
    most :func:`session_cache_size` registry sessions process-wide.
    ``seconds_plan`` records what the cold planning cost — the time a
    cache hit saves.
    """

    key: tuple
    mode: str
    semantics: str
    plan: Any
    generated: GeneratedCounter | None
    lpattern: Any
    provenance: str
    predicted_cost: float
    seconds_plan: float
    report: Any

    def context(self, graph: Any) -> MatchContext:
        ctx_mode = "induced" if self.semantics == "induced" else self.mode
        return MatchContext(
            graph=graph,
            plan=self.plan,
            mode=ctx_mode,
            lpattern=self.lpattern,
            generated=self.generated,
        )


class CacheInfo(NamedTuple):
    """Plan-cache counters (in the spirit of ``functools.lru_cache``)."""

    hits: int
    misses: int
    size: int


def stats_signature(graph: Any, stats: GraphStats) -> tuple:
    """The graph half of the plan-cache key.

    Built from the structural statistics the §IV-C performance model
    consumes — the quantities that, when unchanged, make a cached plan
    exactly the plan the pipeline would re-derive — plus the
    kind-specific extras (label digest, arc count) that distinguish
    graphs the base stats cannot.
    """
    base = (stats.n_vertices, stats.n_edges, stats.triangles, stats.max_degree)
    if isinstance(graph, LabeledGraph):
        import hashlib

        digest = hashlib.sha1(graph.labels.tobytes()).hexdigest()[:16]
        return ("labeled",) + base + (digest,)
    if isinstance(graph, DiGraph):
        return ("digraph",) + base + (graph.n_arcs,)
    return ("graph",) + base


def resolve_execution_backend(
    ctx: MatchContext,
    requested: "str | ExecutionBackend | None",
    *,
    use_codegen: bool = True,
    for_enumeration: bool = False,
) -> ExecutionBackend:
    """The one backend-selection policy (shared by session and shims).

    With no explicit request and ``use_codegen=False`` on a context that
    carries no pre-generated kernel, default to the interpreter rather
    than compiling behind the caller's back; otherwise apply the
    registry's compiled-first :func:`~repro.core.backend.select_backend`.
    """
    if requested is None and not use_codegen and ctx.generated is None:
        return get_backend("interpreter")
    return select_backend(ctx, requested, for_enumeration=for_enumeration)


# ---------------------------------------------------------------------------
# the session
# ---------------------------------------------------------------------------
class MatchSession:
    """A data graph plus a plan cache: the unified query surface.

    Parameters
    ----------
    graph:
        The bound data graph.  A plain :class:`~repro.graph.csr.Graph`
        serves plain and induced queries; a
        :class:`~repro.graph.labeled.LabeledGraph` additionally serves
        labeled queries (plain/induced queries run on its underlying
        structure); a :class:`~repro.graph.digraph.DiGraph` serves
        directed queries.
    backend:
        Session-default execution backend (name, instance or ``None``
        for compiled-first).  Per-query and per-call preferences win.
    max_plans:
        Plan-cache capacity (LRU).  Workloads that stream *distinct*
        queries (e.g. FSM candidate generation) would otherwise grow
        the cache — and every retained :class:`PlanEntry` report —
        without bound.

    >>> session = MatchSession(load_dataset("wiki-vote", scale=0.2))
    >>> session.count(MatchQuery(get_pattern("house")))      # plans
    >>> session.count(MatchQuery(get_pattern("house")))      # cache hit
    """

    def __init__(
        self,
        graph: Any,
        *,
        backend: str | ExecutionBackend | None = None,
        max_plans: int = 128,
    ):
        if not isinstance(graph, (Graph, LabeledGraph, DiGraph)):
            raise TypeError(
                "MatchSession needs a Graph, LabeledGraph or DiGraph, "
                f"got {type(graph).__name__}"
            )
        if max_plans < 1:
            raise ValueError("the plan cache needs capacity >= 1")
        self.graph = graph
        self.backend = backend
        self.max_plans = max_plans
        self._stats: GraphStats | None = None
        self._signature: tuple | None = None
        self._cache: OrderedDict[tuple, PlanEntry] = OrderedDict()
        self._hits = 0
        self._misses = 0
        # One reentrant lock guards the plan cache, the hit/miss
        # counters and the lazy stats/signature memos.  Concurrent
        # service workers share sessions; without it, two threads
        # missing on the same fingerprint both run the full planning
        # pipeline (double-plan) and racing evictions can corrupt the
        # OrderedDict.  Planning happens *under* the lock on purpose:
        # serialising a cold plan is exactly what makes the second
        # thread a cache hit instead of a duplicate plan.
        self._lock = threading.RLock()

    # -- graph views ----------------------------------------------------
    @property
    def stats(self) -> GraphStats:
        """Structural statistics of the bound graph (computed once)."""
        if self._stats is None:
            with self._lock:
                if self._stats is None:
                    g = self.graph
                    if isinstance(g, LabeledGraph):
                        g = g.graph
                    elif isinstance(g, DiGraph):
                        g = g.to_undirected()
                    self._stats = GraphStats.of(g)
        return self._stats

    @property
    def signature(self) -> tuple:
        """The graph half of the plan-cache key (see :func:`stats_signature`)."""
        if self._signature is None:
            with self._lock:
                if self._signature is None:
                    self._signature = stats_signature(self.graph, self.stats)
        return self._signature

    def _execution_graph(self, query: MatchQuery) -> Any:
        """The graph object the chosen engine family actually reads."""
        g = self.graph
        if query.mode == "labeled":
            if not isinstance(g, LabeledGraph):
                raise TypeError(
                    "labeled queries need a session over a LabeledGraph, "
                    f"this session holds a {type(g).__name__}"
                )
            return g
        if query.mode == "directed":
            if not isinstance(g, DiGraph):
                raise TypeError(
                    "directed queries need a session over a DiGraph, "
                    f"this session holds a {type(g).__name__}"
                )
            return g
        if isinstance(g, DiGraph):
            raise TypeError(
                "plain queries cannot run on a DiGraph session; bind a "
                "session to graph.to_undirected() instead"
            )
        return g.graph if isinstance(g, LabeledGraph) else g

    # -- planning -------------------------------------------------------
    def plan_for(self, query: MatchQuery | Any) -> PlanEntry:
        """The cached plan for a query, planning on first sight."""
        query = as_query(query)
        self._execution_graph(query)  # validate mode/graph pairing early
        query = self._apply_autotune(query)
        return self._lookup_or_plan(query)[0]

    def _apply_autotune(self, query: MatchQuery) -> MatchQuery:
        """Fold the calibration profile's plan-level knob into an auto query.

        The profile's winning :class:`~repro.core.autotune.ProfileChoice`
        carries a measured ``use_iep`` preference; applying it *before*
        planning means ``backend="auto"`` plans the same plan its winner
        was calibrated on (IEP-free for a vectorised winner, IEP-suffix
        for a compiled one) — and the adjusted ``use_iep`` participates
        in the fingerprint, so both variants cache independently.  Only
        an undecided knob on a plain edge-semantics query is touched;
        explicit ``use_iep`` always wins.
        """
        if query.use_iep is not None:
            return query
        if query.mode != "plain" or query.semantics != "edge":
            return query
        from repro.core import autotune

        if not autotune.is_auto_spec(query.backend):
            return query
        profile = autotune.profile_for_spec(query.backend)
        if profile is None:
            return query
        # Memoised per (profile, graph) on the query object: the replace
        # below re-runs query validation and invalidates the cached
        # fingerprint, which would otherwise recur on every count() of a
        # reused query — overhead the auto path exists to eliminate.
        memo = query.__dict__.get("_autotune_fold")
        key = (id(profile), id(self.graph))
        if memo is not None and memo[0] == key:
            return memo[1]
        folded = query
        choice = autotune.plan_choice_for(
            query, self._execution_graph(query), profile=profile
        )
        if choice is not None and choice.use_iep is not None:
            folded = dataclasses.replace(query, use_iep=choice.use_iep)
        object.__setattr__(query, "_autotune_fold", (key, folded))
        return folded

    def _lookup_or_plan(self, query: MatchQuery) -> tuple[PlanEntry, bool]:
        """(entry, was cache hit) — the one key computation per call."""
        key = (query.fingerprint, self.signature)
        with self._lock:
            entry = self._cache.get(key)
            if entry is not None:
                self._hits += 1
                obs_metrics.PLAN_CACHE_HITS.inc()
                self._cache.move_to_end(key)
                return entry, True
            with Timer() as t:
                entry = self._plan(query, key)
            entry = dataclasses.replace(entry, seconds_plan=t.elapsed)
            self._misses += 1
            obs_metrics.PLAN_CACHE_MISSES.inc()
            self._cache[key] = entry
            while len(self._cache) > self.max_plans:
                self._cache.popitem(last=False)
            return entry, False

    def _plan(self, query: MatchQuery, key: tuple) -> PlanEntry:
        if query.mode == "plain":
            return self._plan_plain(query, key)
        if query.mode == "labeled":
            return self._plan_labeled(query, key)
        return self._plan_directed(query, key)

    def _plan_plain(self, query: MatchQuery, key: tuple) -> PlanEntry:
        induced = query.semantics == "induced"
        # The pipeline's internal codegen emits plain-semantics kernels;
        # induced entries get their anti-edge kernel compiled right
        # after, from the same chosen plan.  Backend preferences whose
        # declared capabilities say they never consume generated kernels
        # (e.g. vectorised) skip the wasted generation — a later
        # explicit backend="compiled" call still gets a kernel on demand
        # via _ensure_kernel.
        caps = capabilities_of(query.backend)
        wants_kernel = caps is None or caps.generated_kernels
        report = plan_plain(
            query.pattern,
            self.stats,
            use_iep=query.resolved_use_iep,
            max_restriction_sets=query.max_restriction_sets,
            dedup_schedules=query.dedup_schedules,
            codegen=query.use_codegen and not induced and wants_kernel,
        )
        generated = report.generated
        if (
            induced
            and query.use_codegen
            and wants_kernel
            and report.plan.iep_k == 0
        ):
            generated = compile_induced_function(report.plan)
        return PlanEntry(
            key=key,
            mode="plain",
            semantics=query.semantics,
            plan=report.plan,
            generated=generated,
            lpattern=None,
            provenance=report.chosen.config.describe(),
            predicted_cost=report.chosen.predicted_cost,
            seconds_plan=0.0,
            report=report,
        )

    def _plan_labeled(self, query: MatchQuery, key: tuple) -> PlanEntry:
        from repro.core.labeled import LabeledMatcher

        matcher = LabeledMatcher(
            query.pattern, max_restriction_sets=query.max_restriction_sets
        )
        report = matcher.plan(
            self.graph, use_iep=query.resolved_use_iep, stats=self.stats
        )
        caps = capabilities_of(query.backend)
        wants_kernel = caps is None or caps.generated_kernels
        generated = None
        if (
            query.use_codegen
            and wants_kernel
            and isinstance(report.plan, ExecutionPlan)
            and report.plan.iep_k == 0
        ):
            generated = compile_labeled_function(report.plan, query.pattern)
        return PlanEntry(
            key=key,
            mode="labeled",
            semantics=query.semantics,
            plan=report.plan,
            generated=generated,
            lpattern=query.pattern,
            provenance=report.configuration.describe(),
            predicted_cost=report.predicted_cost,
            seconds_plan=0.0,
            report=report,
        )

    def _plan_directed(self, query: MatchQuery, key: tuple) -> PlanEntry:
        from repro.core.directed import DirectedMatcher

        matcher = DirectedMatcher(
            query.pattern, max_restriction_sets=query.max_restriction_sets
        )
        report = matcher.plan(
            self.graph, use_iep=query.resolved_use_iep, stats=self.stats
        )
        caps = capabilities_of(query.backend)
        wants_kernel = caps is None or caps.generated_kernels
        generated = None
        if query.use_codegen and wants_kernel and report.plan.iep_k == 0:
            generated = compile_directed_function(report.plan)
        return PlanEntry(
            key=key,
            mode="directed",
            semantics=query.semantics,
            plan=report.plan,
            generated=generated,
            lpattern=None,
            provenance=(
                f"schedule={report.chosen_schedule} "
                f"restrictions={sorted(report.chosen_restrictions)}"
            ),
            predicted_cost=report.predicted_cost,
            seconds_plan=0.0,
            report=report,
        )

    # -- execution ------------------------------------------------------
    def _effective_query(
        self, query: MatchQuery, backend: "str | ExecutionBackend | None"
    ) -> MatchQuery:
        """Fold the winning backend preference into the query.

        Preference order: call-level ``backend=`` > the query's own >
        the session default.  Folding it in *before* planning lets the
        capability-aware knobs (IEP resolution, codegen skip) see the
        preference regardless of which channel supplied it — a
        session-default or per-call ``"vectorised"`` gets the IEP-free
        plan it can execute, not a silent interpreter fallback.
        """
        effective = backend if backend is not None else query.backend
        if effective is None:
            effective = self.backend
        if effective is not None and effective is not query.backend:
            query = query.with_backend(effective)
        return query

    def _select(
        self,
        ctx: MatchContext,
        query: MatchQuery,
        backend: str | ExecutionBackend | None,
        *,
        for_enumeration: bool = False,
    ) -> ExecutionBackend:
        requested = backend if backend is not None else query.backend
        if requested is None:
            requested = self.backend
        return resolve_execution_backend(
            ctx,
            requested,
            use_codegen=query.use_codegen,
            for_enumeration=for_enumeration,
        )

    def _ensure_kernel(self, entry: PlanEntry, chosen: ExecutionBackend,
                       ctx: MatchContext) -> MatchContext:
        """Memoise a kernel compiled at execution time onto the entry.

        An entry planned without codegen (``use_codegen=False``) but
        executed with an explicit ``backend="compiled"`` would otherwise
        re-generate the kernel on every cache-hit call — exactly the
        cost the cache exists to amortise.
        """
        if (
            chosen.name == "compiled"
            and ctx.generated is None
            and chosen.supports(ctx)
        ):
            with span("compile", mode=ctx.mode):
                generated = compile_for_context(ctx)
            obs_metrics.KERNELS_COMPILED.inc()
            updated = dataclasses.replace(entry, generated=generated)
            with self._lock:
                if entry.key in self._cache:
                    self._cache[entry.key] = updated
            return dataclasses.replace(ctx, generated=generated)
        return ctx

    def count(
        self,
        query: MatchQuery | Any,
        *,
        backend: str | ExecutionBackend | None = None,
    ) -> MatchResult:
        """Count embeddings of ``query`` (a :class:`MatchQuery` or bare
        pattern) in the bound graph, reusing the cached plan when one
        exists.  ``backend`` overrides the query's and the session's
        preference for this call only.
        """
        query = self._effective_query(as_query(query), backend)
        query = self._apply_autotune(query)
        with collect(
            "match", mode=query.mode, semantics=query.semantics
        ) as trace:
            graph = self._execution_graph(query)
            with span("plan") as sp:
                entry, was_hit = self._lookup_or_plan(query)
                sp.set(cache_hit=was_hit, provenance=entry.provenance)
            ctx = entry.context(graph)
            chosen = self._select(ctx, query, backend)
            ctx = self._ensure_kernel(entry, chosen, ctx)
            # Backends with a structured side-channel (the distributed
            # backend's scaling profile, the auto backend's selection
            # report) expose count_with_report; the tuple protocol keeps
            # plain count() implementations untouched.
            runner = getattr(chosen, "count_with_report", None)
            with span("execute", backend=chosen.name) as sx:
                with Timer() as t_exec:
                    if runner is not None:
                        n, side_report = runner(ctx)
                    else:
                        n, side_report = chosen.count(ctx), None
                sx.set(count=n)
        if trace is not None:
            obs_metrics.TRACES_COLLECTED.inc()
        obs_metrics.BACKEND_COUNTS.labels(backend=chosen.name).inc()
        backend_name = chosen.name
        autotune_report = None
        if side_report is not None:
            from repro.core.autotune import AutotuneReport

            if isinstance(side_report, AutotuneReport):
                autotune_report = dataclasses.replace(
                    side_report, actual_seconds=t_exec.elapsed
                )
                backend_name = f"auto:{side_report.chosen}"
                # the delegate's own side-channel (e.g. a distributed
                # scaling profile) keeps its historical slot.
                side_report = side_report.inner_report
        return MatchResult(
            count=n,
            backend=backend_name,
            mode=query.mode,
            semantics=query.semantics,
            cache_hit=was_hit,
            seconds_plan=0.0 if was_hit else entry.seconds_plan,
            seconds_execute=t_exec.elapsed,
            provenance=entry.provenance,
            fingerprint=entry.key[0],
            distributed_report=side_report,
            autotune_report=autotune_report,
            trace=trace,
        )

    def enumerate(
        self,
        query: MatchQuery | Any,
        *,
        limit: int | None = None,
        backend: str | ExecutionBackend | None = None,
    ) -> Iterator[tuple[int, ...]]:
        """Yield embeddings as tuples indexed by pattern vertex.

        Enumeration needs explicit inner loops, so the query's
        IEP-free variant is planned (and cached under its own
        fingerprint); counting-only backends fall back to the
        interpreter automatically.
        """
        query = self._effective_query(as_query(query), backend).for_enumeration()
        graph = self._execution_graph(query)
        entry, _ = self._lookup_or_plan(query)
        ctx = entry.context(graph)
        chosen = self._select(ctx, query, backend, for_enumeration=True)
        return chosen.enumerate_embeddings(ctx, limit=limit)

    def count_many(
        self,
        queries,
        *,
        backend: str | ExecutionBackend | None = None,
        reduce: "bool | str" = "auto",
    ) -> list[MatchResult]:
        """Count a batch of queries (plans shared through the cache).

        The batch entry point for repeated-query workloads: a motif
        census, a significance ensemble, a service draining a request
        queue.  Results are returned in input order.

        On a digraph session, directed queries sharing an undirected
        skeleton are served by XMiner-style reduction
        (:mod:`repro.core.reduction`): the skeleton core is enumerated
        once and every orientation classified against it, instead of
        one full matching run per pattern.  ``reduce="auto"`` (default)
        applies it to groups of two or more queries with no explicit
        backend preference anywhere (call, query or session —
        reduction chooses its own core executor); ``True`` forces it
        for every directed group, ``False`` disables it.  Reduced
        results carry ``backend="reduction"`` and the shared-core
        summary in ``provenance``.
        """
        if reduce not in (True, False, "auto"):
            raise ValueError('reduce must be True, False or "auto"')
        queries = [as_query(q) for q in queries]
        results: list[MatchResult | None] = [None] * len(queries)
        groups: dict[tuple, list[int]] = {}
        if reduce is not False and isinstance(self.graph, DiGraph):
            from repro.core.reduction import skeleton_key

            no_preference = backend is None and self.backend is None
            for i, query in enumerate(queries):
                if query.mode != "directed":
                    continue
                if reduce == "auto" and not (no_preference and query.backend is None):
                    continue
                groups.setdefault(skeleton_key(query.pattern), []).append(i)
        for key, members in groups.items():
            if len(members) < 2:
                continue
            from repro.core.reduction import reduce_directed_batch

            counts, report = reduce_directed_batch(
                self.graph, [queries[i].pattern for i in members]
            )
            for i, n in zip(members, counts):
                results[i] = MatchResult(
                    count=n,
                    backend="reduction",
                    mode="directed",
                    semantics=queries[i].semantics,
                    cache_hit=False,
                    seconds_plan=0.0,
                    seconds_execute=report.seconds_total / len(members),
                    provenance=report.describe(),
                    fingerprint=queries[i].fingerprint,
                )
        for i, query in enumerate(queries):
            if results[i] is None:
                results[i] = self.count(query, backend=backend)
        return results

    # -- cache management ----------------------------------------------
    def cache_info(self) -> CacheInfo:
        """A consistent snapshot of the counters (taken under the lock,
        so a reader never sees a hit counted against a size it did not
        yet reach — the service stats endpoint reads this concurrently
        with executing workers)."""
        with self._lock:
            return CacheInfo(
                hits=self._hits, misses=self._misses, size=len(self._cache)
            )

    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()
            self._hits = 0
            self._misses = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        info = self.cache_info()
        return (
            f"MatchSession({self.graph!r}, plans={info.size}, "
            f"hits={info.hits}, misses={info.misses})"
        )


# ---------------------------------------------------------------------------
# the per-process session registry
# ---------------------------------------------------------------------------
#: id(graph) -> its session, LRU-ordered.  A registered session holds
#: its graph alive, so the registry is bounded: the least recently used
#: entry is evicted once the cap is exceeded (a registry entry that
#: pinned every transient graph — e.g. a significance ensemble — would
#: otherwise grow without bound).
_SESSIONS: OrderedDict[int, MatchSession] = OrderedDict()
_MAX_SESSIONS = 8
#: guards _SESSIONS and _MAX_SESSIONS — the registry is shared by every
#: serving worker thread, and unlocked LRU maintenance on an OrderedDict
#: is not atomic (concurrent move_to_end/popitem can raise KeyError or
#: hand two threads two different sessions for one graph, splitting the
#: plan cache).
_SESSIONS_LOCK = threading.Lock()


def get_session(graph: Any) -> MatchSession:
    """One shared :class:`MatchSession` per (recently used) graph object.

    One-shot helpers (``count_pattern``, ``clique_count``, the CLI, the
    mining workloads) route through this registry so that *any* repeated
    query against the same graph object hits the plan cache — no session
    object needs to travel through their signatures.  At most
    :func:`session_cache_size` sessions are retained (LRU); evicted or
    unregistered graphs simply get a fresh session next time.

    Thread-safe: concurrent callers for the same graph get the *same*
    session object (whose plan cache is itself locked), so a serving
    worker pool shares plans instead of racing to build them.

    Note the retention trade-off: a registered session keeps its graph
    alive until displaced, so a one-shot count on a huge transient graph
    pins it temporarily.  For tight memory budgets, shrink the registry
    (:func:`set_session_cache_size`), call :func:`clear_sessions`, or
    construct a private :class:`MatchSession` whose lifetime you control.
    """
    key = id(graph)
    with _SESSIONS_LOCK:
        session = _SESSIONS.get(key)
        if session is not None and session.graph is graph:
            _SESSIONS.move_to_end(key)
            return session
        session = MatchSession(graph)
        _SESSIONS[key] = session
        _SESSIONS.move_to_end(key)
        while len(_SESSIONS) > _MAX_SESSIONS:
            _SESSIONS.popitem(last=False)
        return session


def session_cache_size() -> int:
    """The registry's LRU capacity."""
    return _MAX_SESSIONS


def set_session_cache_size(n: int) -> None:
    """Resize the registry (shrinking evicts least recently used now)."""
    global _MAX_SESSIONS
    if n < 1:
        raise ValueError("the session registry needs capacity >= 1")
    with _SESSIONS_LOCK:
        _MAX_SESSIONS = n
        while len(_SESSIONS) > _MAX_SESSIONS:
            _SESSIONS.popitem(last=False)


def clear_sessions() -> None:
    """Drop every registered session (test isolation / memory pressure)."""
    with _SESSIONS_LOCK:
        _SESSIONS.clear()
