"""The declarative query layer: one object describes any matching job.

GraphPi's user contract (§III) is *"input a pattern and a data graph"*,
but the repository historically honoured it only for plain undirected
matching — labeled, vertex-induced and directed matching each had their
own entry points.  :class:`MatchQuery` restores the single contract: a
frozen, declarative description of *what* to match —

* the pattern (a :class:`~repro.pattern.pattern.Pattern`,
  :class:`~repro.pattern.labeled.LabeledPattern` or
  :class:`~repro.pattern.directed.DiPattern`; the matching ``mode`` is
  inferred from the type, or can be given explicitly and is validated),
* the matching ``semantics`` — ``"edge"`` (GraphPi/Fractal/Peregrine:
  every pattern edge must be present, extra edges allowed) or
  ``"induced"`` (AutoMine/GraphZero, §V-A: pattern non-edges must be
  absent too).  GraphZero's differing definition is exactly why this is
  a first-class option rather than a separate module,
* planner knobs (``use_iep``, ``max_restriction_sets``,
  ``dedup_schedules``, ``use_codegen``) and an execution ``backend``
  preference.

A query is *inert*: it holds no graph and does no work.  Binding it to a
data graph and executing it is :class:`repro.core.session.MatchSession`'s
job, which caches plans keyed by :attr:`MatchQuery.fingerprint` — the
canonical tuple of every plan-affecting field.  The ``backend``
preference itself is deliberately excluded from the fingerprint: it
changes how a plan *runs*, not which plan is chosen.  What *is*
fingerprinted is the resolved IEP choice, which consults the preferred
backend's declared capabilities (a backend that cannot execute
IEP-suffix plans, e.g. ``vectorised``, defaults to an IEP-free plan),
so capability-driven planning still caches correctly.

Execution returns a :class:`MatchResult` — a structured record (count,
backend used, plan provenance, cache hit/miss, timings) that still
behaves like the bare ``int`` the old API returned.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

from repro.core.backend import capabilities_of
from repro.pattern.directed import DiPattern
from repro.pattern.labeled import LabeledPattern
from repro.pattern.pattern import Pattern

#: matching modes a query can declare (mirrors repro.core.backend.MODES;
#: "induced" is expressed as semantics="induced" on a plain query).
QUERY_MODES = ("plain", "labeled", "directed")

#: matching semantics (§V-A): edge-induced vs vertex-induced.
SEMANTICS = ("edge", "induced")


def _infer_mode(pattern: Any) -> str:
    if isinstance(pattern, LabeledPattern):
        return "labeled"
    if isinstance(pattern, DiPattern):
        return "directed"
    if isinstance(pattern, Pattern):
        return "plain"
    raise TypeError(
        "pattern must be a Pattern, LabeledPattern or DiPattern, "
        f"got {type(pattern).__name__}"
    )


@dataclass(frozen=True)
class MatchQuery:
    """A declarative pattern-matching request (pattern + options, no graph).

    Parameters
    ----------
    pattern:
        What to match.  The pattern type implies the ``mode``.
    mode:
        ``"plain"`` / ``"labeled"`` / ``"directed"``; optional — inferred
        from the pattern type when ``None``, validated against it when
        given.
    semantics:
        ``"edge"`` (default, the GraphPi definition) or ``"induced"``
        (vertex-induced, AutoMine/GraphZero).  ``"induced"`` is only
        defined for plain undirected patterns.
    use_iep:
        ``None`` picks the mode default (IEP on for plain edge-semantics
        counting, off elsewhere); an explicit bool forces it.  Induced
        semantics cannot use IEP (anti-edges make the inner candidate
        sets interact, see :mod:`repro.core.induced`).
    backend:
        Execution preference — a registered backend name, an
        :class:`~repro.core.backend.ExecutionBackend` instance, or
        ``None`` for the compiled-first default.  Not part of the plan
        fingerprint: backends change how a plan runs, not which plan the
        planner picks.
    max_restriction_sets / dedup_schedules / use_codegen:
        Planner knobs, identical to the historical ``PatternMatcher``
        parameters; all three are plan-affecting and therefore part of
        the fingerprint.
    """

    pattern: Any
    mode: str | None = None
    semantics: str = "edge"
    use_iep: bool | None = None
    backend: Any = None
    max_restriction_sets: int | None = 64
    dedup_schedules: bool = True
    use_codegen: bool = True

    def __post_init__(self):
        inferred = _infer_mode(self.pattern)
        if self.mode is None:
            object.__setattr__(self, "mode", inferred)
        elif self.mode not in QUERY_MODES:
            raise ValueError(
                f"unknown mode {self.mode!r}: expected one of {QUERY_MODES}"
            )
        elif self.mode != inferred:
            raise ValueError(
                f"mode {self.mode!r} does not match the pattern type "
                f"{type(self.pattern).__name__} (implies {inferred!r})"
            )
        if self.semantics not in SEMANTICS:
            raise ValueError(
                f"unknown semantics {self.semantics!r}: expected one of {SEMANTICS}"
            )
        if self.semantics == "induced" and self.mode != "plain":
            raise ValueError(
                "vertex-induced semantics is only defined for plain "
                f"undirected patterns, not mode {self.mode!r}"
            )
        if self.semantics == "induced" and self.use_iep:
            raise ValueError(
                "vertex-induced semantics cannot use IEP: anti-edge "
                "constraints make the inner candidate sets interact"
            )
        if not self._structural_pattern().is_connected():
            raise ValueError("pattern matching requires a connected pattern")

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def _structural_pattern(self) -> Pattern | DiPattern:
        """The object carrying connectivity (labeled unwraps to structure)."""
        if self.mode == "labeled":
            return self.pattern.pattern
        return self.pattern

    @property
    def resolved_use_iep(self) -> bool:
        """The effective IEP choice after applying mode defaults.

        The mode default (IEP on for plain edge-semantics counting) is
        additionally gated on the backend preference's declared
        capabilities: a backend that cannot execute IEP-suffix plans
        (e.g. ``vectorised``) gets an IEP-free plan rather than a plan
        it would have to bounce to the interpreter.  An explicit
        ``use_iep=True`` still wins — and then the fallback applies.
        """
        if self.use_iep is not None:
            return bool(self.use_iep)
        if self.mode != "plain" or self.semantics != "edge":
            return False
        caps = capabilities_of(self.backend)
        if caps is not None and not caps.iep:
            return False
        return True

    @property
    def fingerprint(self) -> tuple:
        """Canonical hashable key of every plan-affecting field.

        Two queries with equal fingerprints compile to the same plan on
        the same graph; :class:`~repro.core.session.MatchSession` uses
        ``(fingerprint, graph stats signature)`` as its cache key.  The
        ``backend`` preference is deliberately excluded.  Computed once
        per query object (it sits on the session's hot path).
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is not None:
            return cached
        p = self.pattern
        if self.mode == "labeled":
            structure: tuple = (
                "labeled",
                p.pattern.n_vertices,
                tuple(p.pattern.edges),
                tuple(p.labels),
            )
        elif self.mode == "directed":
            structure = ("directed", p.n_vertices, tuple(p.arcs))
        else:
            structure = ("plain", p.n_vertices, tuple(p.edges))
        fp = (
            structure,
            self.semantics,
            self.resolved_use_iep,
            self.max_restriction_sets,
            self.dedup_schedules,
            self.use_codegen,
        )
        object.__setattr__(self, "_fingerprint", fp)
        return fp

    def for_enumeration(self) -> "MatchQuery":
        """The variant used to enumerate embeddings: IEP off.

        IEP absorbs the innermost loops into counting formulas, so an
        enumerating execution needs a plan compiled with ``iep_k=0`` —
        cached under its own fingerprint.
        """
        if self.use_iep is False:
            return self
        return dataclasses.replace(self, use_iep=False)

    def with_backend(self, backend: Any) -> "MatchQuery":
        """The same query with a different execution preference."""
        return dataclasses.replace(self, backend=backend)

    def describe(self) -> str:
        p = self._structural_pattern()
        name = getattr(p, "name", "") or f"{p.n_vertices}v"
        return (
            f"{name} mode={self.mode} semantics={self.semantics} "
            f"iep={self.resolved_use_iep}"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MatchQuery({self.describe()})"


def as_query(query_or_pattern: Any, **options) -> MatchQuery:
    """Coerce a pattern (or pass through a query) into a :class:`MatchQuery`.

    Every session entry point accepts either; ``options`` are applied
    only when constructing a fresh query from a bare pattern (passing
    both a ready query and options is an error — mutate the query with
    ``dataclasses.replace`` instead).
    """
    if isinstance(query_or_pattern, MatchQuery):
        if options:
            raise TypeError(
                "cannot combine a ready MatchQuery with extra options "
                f"{sorted(options)}; use dataclasses.replace on the query"
            )
        return query_or_pattern
    return MatchQuery(pattern=query_or_pattern, **options)


@dataclass(frozen=True, eq=False)
class MatchResult:
    """A structured matching outcome that still acts like an ``int``.

    Comparison/``int()``/``__index__`` delegate to :attr:`count`, so
    historical call sites (``assert session.count(q) == 42``) keep
    working while new ones can inspect provenance and timings.
    """

    count: int
    backend: str
    mode: str
    semantics: str
    cache_hit: bool
    seconds_plan: float
    seconds_execute: float
    provenance: str
    fingerprint: tuple
    #: side-channel scaling profile, populated only when the executing
    #: backend implements ``count_with_report`` (the ``distributed``
    #: backend's :class:`~repro.runtime.distributed.DistributedReport`).
    distributed_report: Any = None
    #: how ``backend="auto"`` decided, populated only for auto-selected
    #: executions (an :class:`~repro.core.autotune.AutotuneReport` with
    #: the chosen delegate, decision source and predicted-vs-actual
    #: seconds; ``backend`` then reads ``"auto:<delegate>"``).
    autotune_report: Any = None
    #: the span tree for this execution (a :class:`~repro.obs.trace.Trace`),
    #: populated only when tracing is enabled and the sampler admitted
    #: this call (``repro.obs.enable()`` / ``repro count --explain``).
    trace: Any = None

    @property
    def seconds_total(self) -> float:
        return self.seconds_plan + self.seconds_execute

    # -- int-like behaviour --------------------------------------------
    @staticmethod
    def _value(other):
        if isinstance(other, MatchResult):
            return other.count
        if isinstance(other, (int, float)):
            return other
        return None

    def __int__(self) -> int:
        return self.count

    def __index__(self) -> int:
        return self.count

    def __eq__(self, other) -> bool:
        value = self._value(other)
        return NotImplemented if value is None else self.count == value

    def __lt__(self, other) -> bool:
        value = self._value(other)
        return NotImplemented if value is None else self.count < value

    def __le__(self, other) -> bool:
        value = self._value(other)
        return NotImplemented if value is None else self.count <= value

    def __gt__(self, other) -> bool:
        value = self._value(other)
        return NotImplemented if value is None else self.count > value

    def __ge__(self, other) -> bool:
        value = self._value(other)
        return NotImplemented if value is None else self.count >= value

    def __hash__(self) -> int:
        return hash(self.count)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        src = "cache hit" if self.cache_hit else "planned"
        return (
            f"MatchResult(count={self.count}, backend={self.backend!r}, "
            f"mode={self.mode}, semantics={self.semantics}, {src}, "
            f"plan={self.seconds_plan * 1e3:.1f}ms "
            f"exec={self.seconds_execute * 1e3:.1f}ms)"
        )
