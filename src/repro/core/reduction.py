"""Skeleton-sharing reduction for batched directed queries (XMiner).

XMiner's observation: many directed patterns are orientations of the
same undirected *skeleton*, so a batch of directed counting queries can
share one enumeration of that skeleton and diverge only in a cheap
per-embedding classification step.  This module implements that
reduction on top of the repository's own machinery:

1. **Group** the batch by exact skeleton (:func:`skeleton_key`).
2. **Enumerate the shared core once**: the skeleton is planned through
   the regular undirected session (plan cache and all) against the
   digraph's undirected view, and its distinct embeddings stream out as
   whole frontier *blocks* (:meth:`FrontierEngine.frontier_blocks` —
   2-D arrays, never per-embedding tuples).
3. **Classify each core embedding** against every pattern's arc
   constraints: restrictions made the skeleton enumeration emit one
   representative per ``Aut(skeleton)``-orbit of injective maps, so
   composing each block with every skeleton automorphism sweeps *all*
   injective skeleton homomorphisms exactly once (the precomposition
   action is free on injective maps).  Per automorphism, each needed
   arc direction costs one bulk membership probe against the digraph's
   out-CSR keys, shared across every pattern in the group.
4. **Divide** each pattern's surviving-map total by its directed
   automorphism count — exact by the orbit argument, asserted.

The arithmetic, explicitly: for patterns ``P`` sharing skeleton ``S``,

    count(P) = (1 / |dAut(P)|) * sum over enumerated embeddings e,
               sum over sigma in Aut(S) of
               [forall (u, w) in arcs(P): e[sigma(u)] -> e[sigma(w)]]

:meth:`MatchSession.count_many <repro.core.session.MatchSession.
count_many>` applies this automatically to directed batches (the
``reduce`` knob controls it); :func:`reduce_directed_batch` is the
direct entry point.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.graph.digraph import DiGraph
from repro.graph.intersection import bulk_contains_sorted
from repro.pattern.automorphism import automorphisms
from repro.pattern.directed import DiPattern, directed_automorphism_count
from repro.utils.timing import Timer

#: per-digraph undirected view, weakly keyed — the skeleton session and
#: its plan cache must be shared across repeated batched calls.
_UNDIRECTED_CACHE: "weakref.WeakKeyDictionary[DiGraph, object]" = (
    weakref.WeakKeyDictionary()
)


def undirected_view(graph: DiGraph):
    """The digraph's undirected skeleton graph, one per live digraph.

    ``DiGraph.to_undirected`` rebuilds an O(E) CSR per call; reduction
    (and anything else enumerating on the view) needs the *same* graph
    object back each time so ``get_session`` reuses one session and its
    plan cache.
    """
    g = _UNDIRECTED_CACHE.get(graph)
    if g is None:
        g = graph.to_undirected()
        _UNDIRECTED_CACHE[graph] = g
    return g


def skeleton_key(pattern: DiPattern) -> tuple:
    """Exact-skeleton grouping key: ``(n_vertices, sorted edge tuple)``.

    Deliberately *exact* (not isomorphism-canonical): two orientations
    share a core enumeration only when their skeletons are literally
    the same labeled graph.  Isomorphic-but-relabeled skeletons fall
    back to per-pattern counting — correct, just unshared.
    """
    skeleton = pattern.skeleton()
    return (skeleton.n_vertices, tuple(sorted(skeleton.edges)))


@dataclass(frozen=True)
class ReductionReport:
    """What one shared-core evaluation did (``MatchResult.provenance``)."""

    skeleton_key: tuple
    n_patterns: int
    n_automorphisms: int
    n_core_embeddings: int
    n_blocks: int
    core_backend: str
    seconds_total: float

    def describe(self) -> str:
        return (
            f"reduction[{self.n_patterns} patterns over shared skeleton "
            f"{self.skeleton_key}; {self.n_core_embeddings} core embeddings "
            f"x {self.n_automorphisms} automorphisms in {self.n_blocks} "
            f"blocks via {self.core_backend}]"
        )


def _core_blocks(graph: DiGraph, skeleton):
    """Stream the skeleton's distinct embeddings as schedule-ordered
    blocks, plus the schedule that orders their columns.

    Returns ``(blocks, schedule, core_backend)`` where ``blocks`` is an
    iterator of ``(n_embeddings, n)`` arrays with column ``d`` holding
    the vertex bound at schedule position ``d``.
    """
    from repro.core.query import MatchQuery
    from repro.core.session import get_session
    from repro.core.vectorised import FrontierEngine

    ug = undirected_view(graph)
    session = get_session(ug)
    query = MatchQuery(pattern=skeleton, use_iep=False)
    entry, _ = session._lookup_or_plan(query)
    plan = entry.plan
    schedule = plan.config.schedule
    try:
        engine = FrontierEngine(ug, plan)
        return engine.frontier_blocks(), schedule, "vectorised"
    except ValueError:
        # IEP-suffix or disconnected-prefix plan (neither is produced
        # for use_iep=False phase-1 schedules, but stay correct): fall
        # back to interpreted enumeration, batched into blocks.
        def blocks():
            batch: list[tuple[int, ...]] = []
            for emb in session.enumerate(query):
                # session tuples are pattern-vertex-ordered; restore
                # schedule order to match the vectorised block layout.
                batch.append(tuple(emb[schedule[d]] for d in range(len(schedule))))
                if len(batch) >= 65536:
                    yield np.asarray(batch, dtype=np.int64)
                    batch.clear()
            if batch:
                yield np.asarray(batch, dtype=np.int64)

        return blocks(), schedule, "interpreter"


def reduce_directed_batch(
    graph: DiGraph, patterns: Sequence[DiPattern]
) -> tuple[list[int], ReductionReport]:
    """Count every pattern of one skeleton group via the shared core.

    All ``patterns`` must share the same :func:`skeleton_key`; counts
    come back in input order and equal per-pattern
    :meth:`DirectedMatcher.count <repro.core.directed.DirectedMatcher.
    count>` exactly (property-tested).
    """
    from repro.core.vectorised import _digraph_edge_keys

    if not patterns:
        raise ValueError("reduce_directed_batch needs at least one pattern")
    keys = {skeleton_key(p) for p in patterns}
    if len(keys) != 1:
        raise ValueError(
            f"patterns must share one skeleton, got {len(keys)} distinct: "
            f"{sorted(keys)}"
        )
    with Timer() as t:
        skeleton = patterns[0].skeleton()
        auts = automorphisms(skeleton)
        arc_sets = [tuple(p.arcs) for p in patterns]
        needed_arcs = sorted({arc for arcs in arc_sets for arc in arcs})
        out_keys, _ = _digraph_edge_keys(graph)
        n = np.int64(graph.n_vertices)

        blocks, schedule, core_backend = _core_blocks(graph, skeleton)
        pos = {v: d for d, v in enumerate(schedule)}
        raw = [0] * len(patterns)
        n_core = 0
        n_blocks = 0
        for block in blocks:
            n_core += len(block)
            n_blocks += 1
            cols = {v: block[:, pos[v]] for v in range(skeleton.n_vertices)}
            for sigma in auts:
                # One membership probe per needed arc direction, shared
                # by every pattern in the group.
                arc_mask = {
                    (u, w): bulk_contains_sorted(
                        out_keys, cols[sigma[u]] * n + cols[sigma[w]]
                    )
                    for (u, w) in needed_arcs
                }
                for i, arcs in enumerate(arc_sets):
                    if not arcs:
                        raw[i] += len(block)
                        continue
                    mask = arc_mask[arcs[0]]
                    for arc in arcs[1:]:
                        mask = mask & arc_mask[arc]
                    raw[i] += int(mask.sum())
        counts = []
        for p, r in zip(patterns, raw):
            divisor = directed_automorphism_count(p)
            q, rem = divmod(r, divisor)
            if rem:
                raise AssertionError(
                    "directed automorphism division must be exact: "
                    f"{r} / {divisor} for {p!r}"
                )
            counts.append(q)
    report = ReductionReport(
        skeleton_key=next(iter(keys)),
        n_patterns=len(patterns),
        n_automorphisms=len(auts),
        n_core_embeddings=n_core,
        n_blocks=n_blocks,
        core_backend=core_backend,
        seconds_total=t.elapsed,
    )
    return counts, report
