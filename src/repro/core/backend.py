"""The pluggable execution-backend layer: one compiled-first matching core.

GraphPi's headline speedup comes from *generating* specialised code per
(schedule, restriction-set) configuration instead of interpreting it
(§III "Code Generation and Compilation", Fig. 5(b)).  That only pays
off if the generated kernel is the path every frontend actually takes —
so this module gives the system a single execution seam:

* :class:`MatchContext` — everything needed to execute one planned
  matching job: the data graph, the compiled plan, the matching mode
  (plain / induced / labeled / directed) and any pre-generated kernel.
* :class:`ExecutionBackend` — the strategy interface: ``count`` a
  context, optionally ``enumerate_embeddings`` from it.
* a registry — backends register under a name; ``get_backend`` builds
  them, ``select_backend`` implements the compiled-first default with
  automatic interpreter fallback for cases code generation does not
  cover (enumeration, IEP-suffix plans outside plain mode).

Every consumer — :mod:`repro.core.api`, the CLI, the parallel runtime,
the scenario layers and the mining workloads — dispatches through this
registry instead of instantiating engines directly, so a new backend
(vectorised frontiers, a distributed driver, ...) becomes available to
all of them by registering one class.

Registering a custom backend::

    from repro.core.backend import ExecutionBackend, register_backend

    @register_backend
    class MyBackend(ExecutionBackend):
        name = "mine"
        def supports(self, ctx):
            return ctx.mode == "plain"
        def count(self, ctx):
            ...
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.core.codegen import (
    GeneratedCounter,
    compile_directed_function,
    compile_induced_function,
    compile_labeled_function,
    compile_plan_function,
    compile_prefix_function,
)
from repro.core.config import Configuration, ExecutionPlan
from repro.core.directed import DirectedPlan
from repro.core.engine import Engine
from repro.core.engine_variants import PreSliceEngine
from repro.obs.trace import span

#: matching semantics a context can carry; backends opt into each.
MODES = ("plain", "induced", "labeled", "directed")


class BackendUnsupportedError(ValueError):
    """Raised when a backend is asked to execute a context it cannot."""


@dataclass(frozen=True)
class MatchContext:
    """One executable matching job, backend-agnostic.

    ``graph``/``plan`` types vary by mode: a :class:`repro.graph.csr.Graph`
    + :class:`ExecutionPlan` for plain/induced, a
    :class:`repro.graph.labeled.LabeledGraph` + :class:`ExecutionPlan`
    (plus ``lpattern``) for labeled, a
    :class:`repro.graph.digraph.DiGraph` +
    :class:`repro.core.directed.DirectedPlan` for directed.

    ``generated`` optionally carries the kernel the planner already
    compiled, so the compiled backend never re-generates it.
    """

    graph: Any
    plan: Any
    mode: str = "plain"
    lpattern: Any = None
    generated: GeneratedCounter | None = None

    def __post_init__(self):
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r}: expected one of {MODES}")
        if self.mode == "labeled" and self.lpattern is None:
            raise ValueError("labeled contexts need the labeled pattern")


def make_engine(ctx: MatchContext):
    """The interpreter engine matching a context's mode.

    This is the single place that knows which engine class implements
    which semantics; the interpreter and parallel backends (master *and*
    workers) all build their engines here.
    """
    if ctx.mode == "plain":
        return Engine(ctx.graph, ctx.plan)
    if ctx.mode == "induced":
        from repro.core.induced import InducedEngine

        return InducedEngine(ctx.graph, ctx.plan)
    if ctx.mode == "labeled":
        from repro.core.labeled import LabeledEngine

        return LabeledEngine(ctx.graph, ctx.plan, ctx.lpattern)
    if ctx.mode == "directed":
        from repro.core.directed import DirectedEngine

        return DirectedEngine(ctx.graph, ctx.plan)
    raise ValueError(f"unknown mode {ctx.mode!r}")  # pragma: no cover


def make_prefix_counter(
    ctx: MatchContext, split_depth: int, worker_backend: str
) -> tuple[Any, str]:
    """Build a worker-side ``prefix -> raw count`` callable via the registry.

    ``worker_backend="compiled"`` gets a generated kernel when the
    context supports one (plain mode, valid split) and silently falls
    back to the interpreter engine otherwise — the same compiled-first
    policy the top-level API applies.  Returns ``(counter, effective)``
    where ``effective`` names what the counter actually is (post-
    fallback), so callers report it rather than re-deriving the policy.
    """
    if (
        worker_backend == "compiled"
        and ctx.mode == "plain"
        and isinstance(ctx.plan, ExecutionPlan)
        and 1 <= split_depth < ctx.plan.n_loops
    ):
        kernel = compile_prefix_function(ctx.plan, split_depth)
        graph = ctx.graph
        return (lambda prefix: kernel(graph, prefix)), "compiled"
    return make_engine(ctx).count_prefix, "interpreter"


# ---------------------------------------------------------------------------
# the backend interface and registry
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can execute, declared up front.

    ``supports(ctx)`` answers "can you run *this* context" (it may
    inspect the concrete plan); capabilities answer the coarser
    questions planners and UIs need *before* a context exists — which
    matching modes the backend covers, whether it can execute an
    IEP-suffix plan, whether it enumerates, and whether it consumes
    generated kernels (so the planner knows codegen would be wasted).
    :class:`~repro.core.session.MatchSession` uses these to plan for the
    preferred backend instead of guessing, and the CLI ``backends``
    command reports them verbatim.
    """

    #: matching modes (subset of :data:`MODES`) the backend executes.
    modes: frozenset = frozenset()
    #: can execute plans compiled with an IEP suffix (``iep_k > 0``).
    iep: bool = True
    #: implements :meth:`ExecutionBackend.enumerate_embeddings`.
    enumeration: bool = False
    #: consumes pre-generated kernels (``MatchContext.generated``).
    generated_kernels: bool = False
    #: emits fine-grained spans (per-depth / per-task) under the
    #: session's ``execute`` span when tracing is enabled — conformance
    #: asserts traced backends actually attach them.  Backends whose
    #: hot path is per-embedding recursion (interpreter), generated
    #: code (compiled) or a fork pool (parallel, worker side) stay
    #: ``False``: they surface only the coarse ``execute`` span.
    traced: bool = False

    def supports_mode(self, mode: str) -> bool:
        return mode in self.modes


class ExecutionBackend:
    """Strategy interface: how to execute a :class:`MatchContext`."""

    #: registry key; subclasses must override.
    name: str = ""
    #: whether :meth:`enumerate_embeddings` is implemented.
    supports_enumeration: bool = False
    #: coarse capability flags; subclasses must override.
    capabilities: BackendCapabilities = BackendCapabilities()

    def supports(self, ctx: MatchContext) -> bool:
        """Whether this backend can count ``ctx``."""
        raise NotImplementedError

    def count(self, ctx: MatchContext) -> int:
        raise NotImplementedError

    def enumerate_embeddings(
        self, ctx: MatchContext, limit: int | None = None
    ) -> Iterator[tuple[int, ...]]:
        raise BackendUnsupportedError(
            f"backend {self.name!r} does not enumerate embeddings"
        )

    def _require(self, ctx: MatchContext) -> None:
        if not self.supports(ctx):
            raise BackendUnsupportedError(
                f"backend {self.name!r} does not support mode {ctx.mode!r} "
                f"(plan type {type(ctx.plan).__name__})"
            )

    def describe(self) -> str:
        doc = (type(self).__doc__ or "").strip().splitlines()
        return doc[0] if doc else ""


_REGISTRY: dict[str, type[ExecutionBackend]] = {}


def register_backend(cls: type[ExecutionBackend]) -> type[ExecutionBackend]:
    """Class decorator adding a backend to the registry (last wins)."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must set a non-empty `name`")
    _REGISTRY[cls.name] = cls
    return cls


def backend_names() -> list[str]:
    """Registered backend names, registration order."""
    return list(_REGISTRY)


@dataclass(frozen=True)
class BackendInfo:
    """One registry entry: the class plus its declared capabilities."""

    name: str
    cls: type[ExecutionBackend]
    capabilities: BackendCapabilities

    @property
    def supports_enumeration(self) -> bool:
        return self.cls.supports_enumeration

    def summary(self) -> str:
        doc = (self.cls.__doc__ or "").strip().splitlines()
        return doc[0] if doc else ""


def available_backends() -> dict[str, BackendInfo]:
    """Registered backends with their capability flags (name -> info).

    The authoritative answer to "which backend can serve this context":
    each entry reports the modes it executes, IEP-plan support,
    enumeration support and whether it consumes generated kernels —
    consumers (session planning, the CLI ``backends`` command) read
    these flags instead of probing backend instances.
    """
    return {
        name: BackendInfo(name=name, cls=cls, capabilities=cls.capabilities)
        for name, cls in _REGISTRY.items()
    }


def capabilities_of(
    spec: "str | ExecutionBackend | type[ExecutionBackend] | None",
) -> BackendCapabilities | None:
    """The capability flags a backend spec declares, or ``None``.

    Accepts everything a ``backend=`` parameter does (a registered name,
    an instance, a class, or ``None`` for "no preference").  An unknown
    *name* also returns ``None`` — resolution errors belong to
    :func:`get_backend` at execution time, not to query construction.
    """
    if spec is None:
        return None
    if isinstance(spec, str):
        cls = _REGISTRY.get(spec)
        return cls.capabilities if cls is not None else None
    if isinstance(spec, ExecutionBackend):
        return spec.capabilities
    if isinstance(spec, type) and issubclass(spec, ExecutionBackend):
        return spec.capabilities
    return None


def candidate_backends(
    ctx: MatchContext, *, for_enumeration: bool = False
) -> list[BackendInfo]:
    """Registry entries whose *declared* capabilities cover a context.

    Capability-aware pre-filtering for selectors (notably the ``auto``
    backend's profile-choice walk): mode coverage, IEP-plan support when
    the plan carries an IEP suffix, and enumeration support when the
    caller needs embeddings.  Delegating pseudo-backends (``is_meta``)
    are excluded — a selector must land on a backend that executes.
    The definitive per-plan answer remains ``instance.supports(ctx)``;
    this filter only rules out what the flags already rule out.
    """
    plan_iep = getattr(ctx.plan, "iep_k", 0) > 0
    out: list[BackendInfo] = []
    for info in available_backends().values():
        if getattr(info.cls, "is_meta", False):
            continue
        caps = info.capabilities
        if not caps.supports_mode(ctx.mode):
            continue
        if plan_iep and not caps.iep:
            continue
        if for_enumeration and not info.supports_enumeration:
            continue
        out.append(info)
    return out


def get_backend(name: str, **options) -> ExecutionBackend:
    """Instantiate a registered backend; ``options`` go to its ctor."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}: registered backends are {backend_names()}"
        ) from None
    return cls(**options)


def resolve_backend(spec: "str | ExecutionBackend | None") -> ExecutionBackend | None:
    """Normalise a user-facing backend spec: name, instance, or None."""
    if spec is None or isinstance(spec, ExecutionBackend):
        return spec
    if isinstance(spec, str):
        return get_backend(spec)
    raise TypeError(
        f"backend must be a name, ExecutionBackend instance or None, got {spec!r}"
    )


def select_backend(
    ctx: MatchContext,
    requested: "str | ExecutionBackend | None" = None,
    *,
    for_enumeration: bool = False,
) -> ExecutionBackend:
    """Pick the backend for a context — the compiled-first policy.

    * explicit request: honoured, except that a backend that cannot
      serve the request (wrong mode, or enumeration from a
      counting-only backend) falls back to the interpreter — the
      automatic fallback that keeps ``backend="compiled"`` usable as a
      blanket default across enumerate/induced/labeled/directed calls;
    * no request: the ``compiled`` backend whenever it supports the
      context (and the call is a count), else the interpreter.
    """
    backend = resolve_backend(requested)
    if backend is None:
        backend = get_backend("compiled")
    if not backend.supports(ctx) or (for_enumeration and not backend.supports_enumeration):
        backend = get_backend("interpreter")
    return backend


# ---------------------------------------------------------------------------
# the built-in backends
# ---------------------------------------------------------------------------
@register_backend
class InterpreterBackend(ExecutionBackend):
    """Nested-loop interpreter — every mode, counting and enumeration."""

    name = "interpreter"
    supports_enumeration = True
    capabilities = BackendCapabilities(
        modes=frozenset(MODES), iep=True, enumeration=True
    )

    def supports(self, ctx: MatchContext) -> bool:
        return ctx.mode in MODES

    def count(self, ctx: MatchContext) -> int:
        self._require(ctx)
        with span("interpret", mode=ctx.mode):
            return make_engine(ctx).count()

    def enumerate_embeddings(self, ctx, limit=None):
        self._require(ctx)
        return make_engine(ctx).enumerate_embeddings(limit=limit)


@register_backend
class PreSliceBackend(ExecutionBackend):
    """Interpreter variant slicing restriction bounds before intersecting."""

    name = "preslice"
    supports_enumeration = True
    capabilities = BackendCapabilities(
        modes=frozenset({"plain"}), iep=True, enumeration=True
    )

    def supports(self, ctx: MatchContext) -> bool:
        return ctx.mode == "plain" and isinstance(ctx.plan, ExecutionPlan)

    def count(self, ctx: MatchContext) -> int:
        self._require(ctx)
        with span("preslice"):
            return PreSliceEngine(ctx.graph, ctx.plan).count()

    def enumerate_embeddings(self, ctx, limit=None):
        self._require(ctx)
        return PreSliceEngine(ctx.graph, ctx.plan).enumerate_embeddings(limit=limit)


def compile_for_context(ctx: MatchContext) -> GeneratedCounter:
    """Generate the kernel matching a context's semantics.

    The single mode -> generator dispatch: the compiled backend and the
    session's kernel cache both go through here, so a context is never
    paired with a kernel of the wrong semantics.
    """
    if ctx.mode == "plain":
        return compile_plan_function(ctx.plan)
    if ctx.mode == "induced":
        return compile_induced_function(ctx.plan)
    if ctx.mode == "labeled":
        return compile_labeled_function(ctx.plan, ctx.lpattern)
    if ctx.mode == "directed":
        return compile_directed_function(ctx.plan)
    raise BackendUnsupportedError(
        f"no kernel generator for mode {ctx.mode!r}"
    )


@register_backend
class CompiledBackend(ExecutionBackend):
    """Generated specialised code (the paper's execution path); count only."""

    name = "compiled"
    capabilities = BackendCapabilities(
        modes=frozenset({"plain", "induced", "labeled", "directed"}),
        iep=True,
        generated_kernels=True,
    )

    def supports(self, ctx: MatchContext) -> bool:
        if ctx.mode == "directed":
            # Directed kernels are innermost-count variants like the
            # labeled/induced ones: IEP-suffix plans fall back (the
            # session plans directed queries IEP-free anyway).
            return isinstance(ctx.plan, DirectedPlan) and ctx.plan.iep_k == 0
        if not isinstance(ctx.plan, ExecutionPlan):
            return False
        if ctx.mode == "plain":
            return True
        # Labeled/induced kernels are innermost-count variants: the IEP
        # arithmetic assumes plain edge semantics, so an IEP-suffix plan
        # must fall back (the session plans these IEP-free anyway).
        return ctx.mode in ("induced", "labeled") and ctx.plan.iep_k == 0

    def count(self, ctx: MatchContext) -> int:
        self._require(ctx)
        generated = ctx.generated
        regenerated = (
            generated is None
            or generated.plan is not ctx.plan
            or generated.mode != ctx.mode
        )
        if regenerated:
            generated = compile_for_context(ctx)
        with span("kernel", mode=ctx.mode, regenerated=regenerated):
            return generated(ctx.graph)


@register_backend
class ParallelBackend(ExecutionBackend):
    """Multiprocess master/worker execution; workers run compiled kernels.

    Constructor options: ``n_workers``, ``split_depth``, ``chunksize``
    and ``worker_backend`` ("compiled" default, "interpreter" to force
    interpreted workers) — all forwarded to
    :func:`repro.runtime.parallel.parallel_count_ctx`.
    """

    name = "parallel"
    # generated_kernels stays False: workers compile their own *prefix*
    # kernels (make_prefix_counter); a whole-plan kernel shipped in the
    # context is never executed, so planning one would be pure waste.
    capabilities = BackendCapabilities(modes=frozenset(MODES), iep=True)

    def __init__(
        self,
        *,
        n_workers: int | None = None,
        split_depth: int | None = None,
        chunksize: int = 8,
        worker_backend: str = "compiled",
    ):
        self.n_workers = n_workers
        self.split_depth = split_depth
        self.chunksize = chunksize
        self.worker_backend = worker_backend

    def supports(self, ctx: MatchContext) -> bool:
        # Every engine family implements the prefix-task protocol; a
        # 1-loop plan has no outer loop to split on, so fall back.
        return ctx.mode in MODES and ctx.plan.n_loops >= 2

    def count(self, ctx: MatchContext) -> int:
        self._require(ctx)
        from repro.runtime.parallel import parallel_count_ctx

        return parallel_count_ctx(
            ctx,
            n_workers=self.n_workers,
            split_depth=self.split_depth,
            chunksize=self.chunksize,
            worker_backend=self.worker_backend,
        ).count


def plain_context(graph, plan_or_config, generated: GeneratedCounter | None = None
                  ) -> MatchContext:
    """Convenience: wrap a plan/configuration as a plain-mode context."""
    if isinstance(plan_or_config, Configuration):
        plan = plan_or_config.compile()
    elif isinstance(plan_or_config, ExecutionPlan):
        plan = plan_or_config
    else:
        raise TypeError(
            f"expected ExecutionPlan or Configuration, got {type(plan_or_config)!r}"
        )
    return MatchContext(graph=graph, plan=plan, generated=generated)


# Registering the vectorised frontier and distributed backends requires
# this module to be fully defined (they subclass ExecutionBackend), hence
# the tail imports: importing the registry always brings the full
# backend set with it.
from repro.core import vectorised as _vectorised  # noqa: E402, F401
from repro.runtime import distributed as _distributed  # noqa: E402, F401
from repro.core import autotune as _autotune  # noqa: E402, F401
