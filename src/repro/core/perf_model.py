"""The accurate performance prediction model (§IV-C).

For a configuration compiled to a plan, the model estimates the cost of
the generated nested-loop program:

    cost_i = l_i · (1 - f_i) · (c_i + cost_{i+1})   for i < n
    cost_n = l_n · (1 - f_n)

* ``l_i`` — expected loop size: the cardinality estimate of the loop's
  candidate set, |V|·p1·p2^(x-1) for an intersection of x
  neighbourhoods (|V| when the loop has no dependencies);
* ``c_i`` — intersection cost: sorted-merge intersections cost the sum
  of the input cardinalities, accumulated pairwise
  (|N(a)|+|N(b)| for the first, |partial|+|N(c)| for the next, …);
* ``f_i`` — probability that the restrictions checked in loop i filter
  the current partial embedding, computed **exactly** over the n!
  relative orderings of vertex ids (the paper's procedure): each
  restriction filters the orderings that survived the previous ones.

The model only needs |V|, |E| and the triangle count of the data graph
(:class:`repro.graph.stats.GraphStats`), which is what makes it cheap
enough to rank thousands of configurations (Table III).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from math import factorial

import numpy as np

from repro.core.config import Configuration, ExecutionPlan
from repro.graph.stats import GraphStats

#: relative weight of the "other overhead" o_i term; the paper sets the
#: per-iteration bookkeeping cost to a constant.
LOOP_OVERHEAD = 1.0

_rank_matrix_cache: dict[int, np.ndarray] = {}


def _rank_matrix(n: int) -> np.ndarray:
    """All n! orderings as an (n!, n) int8 matrix; row r gives the rank of
    the vertex bound at each schedule position."""
    if n not in _rank_matrix_cache:
        if n > 9:
            raise ValueError("rank-order enumeration is factorial; n > 9 unsupported")
        mat = np.array(list(permutations(range(n))), dtype=np.int8)
        _rank_matrix_cache[n] = mat
    return _rank_matrix_cache[n]


def filter_probabilities(plan: ExecutionPlan) -> list[float]:
    """f_i for every loop, from exact enumeration of relative orderings.

    Restrictions are applied in loop order; each filters only the
    orderings that survived all earlier loops, exactly as the generated
    code would short-circuit.
    """
    n = plan.n
    ranks = _rank_matrix(n)
    alive = np.ones(len(ranks), dtype=bool)
    fs: list[float] = []
    for depth in range(n):
        before = int(alive.sum())
        if before == 0:
            fs.append(0.0)
            continue
        mask = alive.copy()
        for j in plan.lower[depth]:
            mask &= ranks[:, depth] > ranks[:, j]
        for j in plan.upper[depth]:
            mask &= ranks[:, depth] < ranks[:, j]
        after = int(mask.sum())
        fs.append((before - after) / before)
        alive = mask
    return fs


def loop_size_estimates(plan: ExecutionPlan, stats: GraphStats) -> list[float]:
    """l_i per loop: |V| · p1 · p2^(x-1) with x = #dependencies."""
    return [stats.expected_candidate_size(len(deps)) for deps in plan.deps]


def intersection_cost_estimates(plan: ExecutionPlan, stats: GraphStats) -> list[float]:
    """c_i per loop: accumulated pairwise sorted-merge costs.

    Intersecting x sorted neighbourhoods of expected size d
    (d = |V|·p1) pairwise: (d + d) + (|∩2| + d) + … — each step adds the
    running intersection's expected size plus one more neighbourhood.
    Loops with ≤ 1 dependency perform no intersection (a neighbourhood
    is used directly), so c_i = 0.
    """
    costs: list[float] = []
    for deps in plan.deps:
        x = len(deps)
        if x <= 1:
            costs.append(0.0)
            continue
        total = 0.0
        for t in range(1, x):
            total += stats.expected_candidate_size(t) + stats.avg_degree
        costs.append(total)
    return costs


@dataclass(frozen=True)
class CostBreakdown:
    """Per-loop factors and the resulting nested cost (for reporting)."""

    loop_sizes: tuple[float, ...]
    filter_probs: tuple[float, ...]
    intersection_costs: tuple[float, ...]
    total: float


def estimate_cost(plan: ExecutionPlan, stats: GraphStats) -> float:
    """The paper's recursion, evaluated bottom-up."""
    return cost_breakdown(plan, stats).total


def cost_breakdown(plan: ExecutionPlan, stats: GraphStats) -> CostBreakdown:
    n = plan.n
    ls = loop_size_estimates(plan, stats)
    fs = filter_probabilities(plan)
    cs = intersection_cost_estimates(plan, stats)

    n_loops = plan.n_loops
    if plan.iep_k > 0:
        # The k inner loops are replaced by one IEP evaluation whose cost
        # is the block-intersection work: every inner vertex's candidate
        # set must be materialised (its c_i), plus Bell(k)-bounded
        # combination work proportional to the candidate sizes.
        iep_eval = 0.0
        for i in range(n_loops, n):
            iep_eval += cs[i] + ls[i] + LOOP_OVERHEAD
        cost = iep_eval
        for i in range(n_loops - 1, -1, -1):
            cost = ls[i] * (1.0 - fs[i]) * (cs[i] + LOOP_OVERHEAD + cost)
    else:
        cost = ls[n - 1] * (1.0 - fs[n - 1])
        for i in range(n - 2, -1, -1):
            cost = ls[i] * (1.0 - fs[i]) * (cs[i] + LOOP_OVERHEAD + cost)
    return CostBreakdown(tuple(ls), tuple(fs), tuple(cs), float(cost))


@dataclass(frozen=True)
class RankedConfiguration:
    config: Configuration
    plan: ExecutionPlan
    predicted_cost: float


class PerformanceModel:
    """Ranks configurations for a given data-graph statistics summary."""

    def __init__(self, stats: GraphStats):
        self.stats = stats

    def rank(
        self,
        configurations,
        *,
        iep_k: int = 0,
    ) -> list[RankedConfiguration]:
        """Score every configuration, cheapest first.

        ``iep_k`` > 0 compiles each plan in IEP mode *when the schedule
        supports it* (its realisable independent suffix is long enough);
        schedules that do not support the requested k are scored without
        IEP — mirroring GraphPi, which only applies IEP to configurations
        of the right shape.
        """
        ranked: list[RankedConfiguration] = []
        for config in configurations:
            plan = _compile_best_effort(config, iep_k)
            ranked.append(
                RankedConfiguration(config, plan, estimate_cost(plan, self.stats))
            )
        ranked.sort(key=lambda r: r.predicted_cost)
        return ranked

    def choose(self, configurations, *, iep_k: int = 0) -> RankedConfiguration:
        ranked = self.rank(configurations, iep_k=iep_k)
        if not ranked:
            raise ValueError("no configurations to choose from")
        return ranked[0]


def _compile_best_effort(config: Configuration, iep_k: int) -> ExecutionPlan:
    """Compile with the largest feasible IEP suffix ≤ ``iep_k``.

    Shrinks k when the schedule's independent suffix is shorter, and
    again when dropped inner↔inner restrictions admit no uniform
    overcount divisor (k = 1 never drops restrictions, so the ladder
    always terminates on a correct plan).
    """
    from repro.core.restrictions import NonUniformOvercountError
    from repro.core.schedule import intersection_free_suffix_length

    if iep_k > 0:
        realisable = intersection_free_suffix_length(config.pattern, config.schedule)
        k = min(iep_k, realisable)
        while k > 0:
            try:
                return config.compile(iep_k=k)
            except NonUniformOvercountError:
                k -= 1
    return config.compile()
