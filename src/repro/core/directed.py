"""Directed pattern matching — the paper's §II-A extension, realised.

*"All patterns and data graphs are assumed to be undirected and
unlabeled graphs, although all methods proposed in this paper can be
easily extended to directed and labeled graphs."*  (§II-A; the labeled
half lives in :mod:`repro.core.labeled`.)

Every GraphPi component carries over with a local twist:

* **Algorithm 1** runs verbatim on the *direction-preserving*
  automorphism subgroup (:func:`directed_automorphisms`) — restrictions
  are still id-order pairs, ``no_conflict`` and the complete-graph
  ``validate`` are unchanged (on the complete digraph every injective
  assignment is an embedding, so count == n!/|Aut| still certifies).
* **2-phase schedules** are generated on the undirected *skeleton*
  (phase 1/2 only care that two pattern vertices interact, not which
  way the arc points) and deduplicated by the *directed* group.
* **The engine** forms candidate sets from out- or in-neighbourhoods:
  a pattern arc ``bound → searched`` constrains candidates to
  ``out_neighbors`` of the bound data vertex, ``searched → bound`` to
  ``in_neighbors``, and an antiparallel pair to their intersection.
* **The performance model** scores (schedule, restriction-set) pairs on
  the skeleton configuration against the symmetrised data graph — a
  deliberate simplification (out/in-degree asymmetry is averaged away)
  that preserves the ranking signal the model actually uses
  (cardinalities of closed wedges and restriction filter factors).

IEP counting is not offered for directed patterns: the independent-
suffix candidate sets are still plain finite sets, but the paper's
overcount correction assumes the undirected orbit structure; directed
counting uses plain enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.core.config import Configuration
from repro.core.iep import IEPCounter, set_partitions
from repro.core.perf_model import PerformanceModel
from repro.core.restrictions import (
    Restriction,
    RestrictionGenerator,
    RestrictionSet,
    check_restrictions_applicable,
)
from repro.core.schedule import Schedule, generate_schedules
from repro.graph.digraph import DiGraph
from repro.graph.intersection import bounded_slice, intersect_many
from repro.graph.stats import GraphStats
from repro.pattern.directed import DiPattern, directed_automorphisms
from repro.utils.timing import Timer


# ---------------------------------------------------------------------------
# preprocessing
# ---------------------------------------------------------------------------
def generate_directed_restriction_sets(
    pattern: DiPattern, *, validate: bool = True, max_sets: int | None = None
) -> list[RestrictionSet]:
    """Algorithm 1 on the direction-preserving automorphism subgroup."""
    auts = directed_automorphisms(pattern)
    gen = RestrictionGenerator(
        pattern.skeleton(), validate=validate, max_sets=max_sets, auts=auts
    )
    sets = gen.generate()
    if not sets:
        raise RuntimeError(
            f"Algorithm 1 produced no valid restriction set for {pattern!r}"
        )
    return sets


def generate_directed_schedules(
    pattern: DiPattern, *, dedup_automorphic: bool = True
) -> list[Schedule]:
    """2-phase schedules on the skeleton, deduped by the directed group.

    Directed relabelling equivalence is coarser than undirected (the
    directed group is a subgroup), so dedup here keeps more schedules
    than the undirected dedup would — each genuinely distinct loop nest
    survives.
    """
    schedules = generate_schedules(pattern.skeleton(), dedup_automorphic=False)
    if not dedup_automorphic:
        return schedules
    auts = directed_automorphisms(pattern)
    seen: set[Schedule] = set()
    out: list[Schedule] = []
    for s in schedules:
        orbit = {tuple(sigma[v] for v in s) for sigma in auts}
        canon = min(orbit)
        if canon in seen:
            continue
        seen.add(canon)
        out.append(s)
    return out


@dataclass(frozen=True)
class DirectedPlan:
    """Compiled loop nest for one directed configuration.

    Per depth ``d``: candidates are the intersection of
    ``out_neighbors(value at j)`` for ``j ∈ out_deps[d]`` and
    ``in_neighbors(value at j)`` for ``j ∈ in_deps[d]`` (an antiparallel
    pattern pair lists ``j`` in both), range-sliced by the restriction
    bounds exactly as in the undirected plan.

    ``iep_k > 0`` replaces the innermost k loops by Inclusion–Exclusion
    counting; ``iep_overcount`` is the §IV-D divisor, computed over the
    *directed* automorphism group (the coset argument is group-agnostic).
    """

    pattern: DiPattern
    schedule: Schedule
    restrictions: frozenset[Restriction]
    out_deps: tuple[tuple[int, ...], ...]
    in_deps: tuple[tuple[int, ...], ...]
    lower: tuple[tuple[int, ...], ...]
    upper: tuple[tuple[int, ...], ...]
    iep_k: int = 0
    iep_overcount: int = 1
    dropped_restrictions: frozenset[Restriction] = frozenset()

    @property
    def n(self) -> int:
        return len(self.schedule)

    @property
    def n_loops(self) -> int:
        """Loop depths actually executed (IEP absorbs the last iep_k)."""
        return self.n - self.iep_k


def compile_directed_plan(
    pattern: DiPattern,
    schedule: Schedule,
    restrictions: frozenset[Restriction] | set[Restriction],
    *,
    iep_k: int = 0,
) -> DirectedPlan:
    """Resolve a directed (schedule, restriction set) into per-depth ops.

    ``iep_k`` requests IEP over the innermost k loops; the last k
    scheduled vertices must be pairwise non-adjacent in the *skeleton*
    (antiparallel or single arcs both create adjacency).  Restriction
    placement mirrors the undirected compiler: outer↔inner restrictions
    become range bounds on the inner candidate sets, inner↔inner ones
    are dropped and compensated by the exact per-orbit multiplicity over
    the directed group.
    """
    from repro.core.restrictions import iep_overcount_multiplicity
    from repro.core.schedule import intersection_free_suffix_length

    n = pattern.n_vertices
    if sorted(schedule) != list(range(n)):
        raise ValueError(
            f"schedule {schedule!r} is not a permutation of the {n} pattern vertices"
        )
    skeleton = pattern.skeleton()
    check_restrictions_applicable(skeleton, restrictions)
    if not 0 <= iep_k < n:
        raise ValueError(f"iep_k={iep_k} out of range for a {n}-vertex pattern")
    if iep_k > 0:
        realisable = intersection_free_suffix_length(skeleton, schedule)
        if iep_k > realisable:
            raise ValueError(
                f"iep_k={iep_k} but schedule {schedule!r} only has an "
                f"independent suffix of length {realisable}"
            )
    position = {v: i for i, v in enumerate(schedule)}
    out_deps: list[tuple[int, ...]] = []
    in_deps: list[tuple[int, ...]] = []
    for d, v in enumerate(schedule):
        # Arc (earlier → v): candidate must be a successor of the earlier
        # binding.  Arc (v → earlier): candidate must be a predecessor.
        out_deps.append(
            tuple(j for j in range(d) if pattern.has_arc(schedule[j], v))
        )
        in_deps.append(
            tuple(j for j in range(d) if pattern.has_arc(v, schedule[j]))
        )
    inner_positions = set(range(n - iep_k, n)) if iep_k else set()
    lower: list[list[int]] = [[] for _ in range(n)]
    upper: list[list[int]] = [[] for _ in range(n)]
    dropped: set[Restriction] = set()
    for g, s in restrictions:
        pg, ps = position[g], position[s]
        if pg in inner_positions and ps in inner_positions:
            dropped.add((g, s))
            continue
        if pg > ps:
            lower[pg].append(ps)
        else:
            upper[ps].append(pg)
    overcount = 1
    if dropped:
        kept = frozenset(restrictions) - frozenset(dropped)
        overcount = iep_overcount_multiplicity(
            skeleton, kept, auts=directed_automorphisms(pattern)
        )
    return DirectedPlan(
        pattern=pattern,
        schedule=tuple(schedule),
        restrictions=frozenset(restrictions),
        out_deps=tuple(out_deps),
        in_deps=tuple(in_deps),
        lower=tuple(tuple(sorted(x)) for x in lower),
        upper=tuple(tuple(sorted(x)) for x in upper),
        iep_k=iep_k,
        iep_overcount=overcount,
        dropped_restrictions=frozenset(dropped),
    )


class DirectedIEPCounter(IEPCounter):
    """IEP evaluator drawing inner candidate sets from out/in adjacency."""

    def __init__(self, graph: DiGraph, plan: DirectedPlan):
        # IEPCounter.__init__ reads plan.deps; the directed plan exposes
        # out/in splits instead, so initialise manually.
        if plan.iep_k <= 0:
            raise ValueError("IEPCounter requires a plan with iep_k > 0")
        self.graph = graph
        self.plan = plan
        n = plan.n
        k = plan.iep_k
        self._inner_positions = list(range(n - k, n))
        self._partitions = set_partitions(k)

    def _inner_sets(self, assigned):
        graph = self.graph
        plan = self.plan
        raw_cache: dict[tuple, "np.ndarray"] = {}
        sets = []
        for pos in self._inner_positions:
            out_verts = frozenset(assigned[j] for j in plan.out_deps[pos])
            in_verts = frozenset(assigned[j] for j in plan.in_deps[pos])
            lo, hi = self._bounds(pos, assigned)
            key = (out_verts, in_verts, lo, hi)
            if key not in raw_cache:
                arrays = [graph.out_neighbors(v) for v in out_verts]
                arrays += [graph.in_neighbors(v) for v in in_verts]
                arr = intersect_many(arrays) if arrays else graph.vertices()
                if lo is not None or hi is not None:
                    arr = bounded_slice(arr, lo, hi)
                raw_cache[key] = arr
            sets.append(raw_cache[key])
        return sets


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------
class DirectedEngine:
    """Nested-loop DFS over a :class:`DiGraph` under one directed plan."""

    def __init__(self, graph: DiGraph, plan: DirectedPlan):
        self.graph = graph
        self.plan = plan
        self._all_vertices = graph.vertices()
        self._iep = DirectedIEPCounter(graph, plan) if plan.iep_k > 0 else None

    def candidates(self, depth: int, assigned: Sequence[int]) -> np.ndarray:
        plan = self.plan
        arrays = [
            self.graph.out_neighbors(assigned[j]) for j in plan.out_deps[depth]
        ] + [self.graph.in_neighbors(assigned[j]) for j in plan.in_deps[depth]]
        cand = intersect_many(arrays) if arrays else self._all_vertices
        lo: int | None = None
        for j in plan.lower[depth]:
            v = assigned[j]
            if lo is None or v > lo:
                lo = v
        hi: int | None = None
        for j in plan.upper[depth]:
            v = assigned[j]
            if hi is None or v < hi:
                hi = v
        if lo is not None or hi is not None:
            cand = bounded_slice(cand, lo, hi)
        return cand

    def count(self) -> int:
        if self.plan.n > self.graph.n_vertices:
            return 0
        raw = self._count_rec(0, [])
        return self.finalize_count(raw)

    def _count_rec(self, depth: int, assigned: list[int]) -> int:
        plan = self.plan
        cand = self.candidates(depth, assigned)
        if len(cand) == 0:
            return 0
        last_loop = plan.n_loops - 1
        if depth == last_loop:
            if plan.iep_k > 0:
                total = 0
                for v in cand:
                    vi = int(v)
                    if vi in assigned:
                        continue
                    assigned.append(vi)
                    total += self._iep.count_inner(assigned)
                    assigned.pop()
                return total
            return len(cand) - sum(1 for a in assigned if a in cand)
        total = 0
        for v in cand:
            vi = int(v)
            if vi in assigned:
                continue
            assigned.append(vi)
            total += self._count_rec(depth + 1, assigned)
            assigned.pop()
        return total

    # -- prefix tasks (the §IV-E master/worker split, directed) ----------
    def iter_prefixes(self, split_depth: int) -> Iterator[tuple[int, ...]]:
        """Enumerate outer-loop value tuples down to ``split_depth`` loops.

        Same contract as :meth:`repro.core.engine.Engine.iter_prefixes`:
        the master executes the outer loops (restrictions already
        applied), workers continue from each prefix.
        """
        if self.plan.n_loops < 2:
            raise ValueError(
                "prefix splitting needs at least two executed loops; this plan "
                f"has n_loops={self.plan.n_loops} (IEP absorbed the rest)"
            )
        if not 1 <= split_depth < self.plan.n_loops:
            raise ValueError(
                f"split_depth must be in [1, {self.plan.n_loops - 1}], got {split_depth}"
            )

        def rec(depth: int, assigned: list[int]) -> Iterator[tuple[int, ...]]:
            if depth == split_depth:
                yield tuple(assigned)
                return
            for v in self.candidates(depth, assigned):
                vi = int(v)
                if vi in assigned:
                    continue
                assigned.append(vi)
                yield from rec(depth + 1, assigned)
                assigned.pop()

        yield from rec(0, [])

    def count_prefix(self, prefix: tuple[int, ...]) -> int:
        """Count embeddings under an outer-loop prefix (one worker task).

        Raw (no IEP overcount division), so task partials can be summed
        before the single final :meth:`finalize_count` division.
        """
        return self._count_rec(len(prefix), list(prefix))

    def finalize_count(self, raw_total: int) -> int:
        """Apply the IEP overcount divisor to a sum of task results."""
        if self.plan.iep_k > 0 and self.plan.iep_overcount != 1:
            q, r = divmod(raw_total, self.plan.iep_overcount)
            if r:
                raise AssertionError(
                    "IEP overcount correction must divide evenly: "
                    f"{raw_total} / {self.plan.iep_overcount}"
                )
            return q
        return raw_total

    def enumerate_embeddings(
        self, limit: int | None = None
    ) -> Iterator[tuple[int, ...]]:
        """Yield embeddings as tuples ``emb[pattern_vertex] = data vertex``.

        Validation is eager (this is a plain function returning a
        generator), so an IEP plan fails at the call site, not at the
        first ``next()``.
        """
        if self.plan.iep_k > 0:
            raise ValueError("enumeration requires a plan compiled with iep_k=0")
        return self._enumerate(limit)

    def _enumerate(self, limit: int | None) -> Iterator[tuple[int, ...]]:
        if self.plan.n > self.graph.n_vertices:
            return
        schedule = self.plan.schedule
        inverse = [0] * len(schedule)
        for pos, v in enumerate(schedule):
            inverse[v] = pos
        remaining = float("inf") if limit is None else limit

        def rec(depth: int, assigned: list[int]) -> Iterator[list[int]]:
            cand = self.candidates(depth, assigned)
            if depth == self.plan.n - 1:
                for v in cand:
                    vi = int(v)
                    if vi not in assigned:
                        assigned.append(vi)
                        yield assigned
                        assigned.pop()
                return
            for v in cand:
                vi = int(v)
                if vi in assigned:
                    continue
                assigned.append(vi)
                yield from rec(depth + 1, assigned)
                assigned.pop()

        for assigned in rec(0, []):
            if remaining <= 0:
                return
            remaining -= 1
            yield tuple(assigned[inverse[v]] for v in range(len(schedule)))


# ---------------------------------------------------------------------------
# the user-facing matcher
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class DirectedPlanReport:
    """Preprocessing output of :meth:`DirectedMatcher.plan`."""

    pattern: DiPattern
    restriction_sets: tuple[RestrictionSet, ...]
    n_schedules: int
    chosen_schedule: Schedule
    chosen_restrictions: RestrictionSet
    predicted_cost: float
    plan: DirectedPlan
    seconds_total: float


class DirectedMatcher:
    """Plan and execute directed pattern matching (GraphPi pipeline).

    Mirrors :class:`repro.core.api.PatternMatcher` for
    :class:`~repro.pattern.directed.DiPattern` on
    :class:`~repro.graph.digraph.DiGraph`.
    """

    DEFAULT_MAX_RESTRICTION_SETS = 64

    def __init__(
        self,
        pattern: DiPattern,
        *,
        max_restriction_sets: int | None = DEFAULT_MAX_RESTRICTION_SETS,
    ):
        if not pattern.is_connected():
            raise ValueError("pattern matching requires a (weakly) connected pattern")
        self.pattern = pattern
        self.max_restriction_sets = max_restriction_sets
        self._restriction_cache: list[RestrictionSet] | None = None
        self._schedule_cache: list[Schedule] | None = None

    def restriction_sets(self) -> list[RestrictionSet]:
        if self._restriction_cache is None:
            self._restriction_cache = generate_directed_restriction_sets(
                self.pattern, max_sets=self.max_restriction_sets
            )
        return self._restriction_cache

    def schedules(self) -> list[Schedule]:
        if self._schedule_cache is None:
            self._schedule_cache = generate_directed_schedules(self.pattern)
        return self._schedule_cache

    def plan(
        self,
        graph: DiGraph,
        *,
        stats: GraphStats | None = None,
        use_iep: bool = False,
    ) -> DirectedPlanReport:
        """Rank all (schedule, restriction set) pairs and compile the best.

        Ranking runs the undirected performance model on the skeleton
        configuration against the symmetrised graph statistics (see the
        module docstring for why this preserves the ranking signal).
        ``use_iep`` compiles the chosen configuration with the largest
        realisable IEP suffix, shrinking k until the overcount divisor
        is uniform (mirroring the undirected planner).
        """
        from repro.core.restrictions import NonUniformOvercountError
        from repro.core.schedule import intersection_free_suffix_length

        with Timer() as t:
            if stats is None:
                stats = GraphStats.of(graph.to_undirected())
            res_sets = self.restriction_sets()
            schedules = self.schedules()
            skeleton = self.pattern.skeleton()
            configs = [
                Configuration(skeleton, s, frozenset(r))
                for s in schedules
                for r in res_sets
            ]
            ranking = PerformanceModel(stats).rank(configs)
            best = ranking[0]
            iep_k = 0
            if use_iep:
                iep_k = intersection_free_suffix_length(
                    skeleton, best.config.schedule
                )
            plan = None
            while plan is None:
                try:
                    plan = compile_directed_plan(
                        self.pattern,
                        best.config.schedule,
                        best.config.restrictions,
                        iep_k=iep_k,
                    )
                except NonUniformOvercountError:
                    iep_k -= 1  # k = 1 drops nothing, so this terminates
        return DirectedPlanReport(
            pattern=self.pattern,
            restriction_sets=tuple(res_sets),
            n_schedules=len(schedules),
            chosen_schedule=best.config.schedule,
            chosen_restrictions=frozenset(best.config.restrictions),
            predicted_cost=best.predicted_cost,
            plan=plan,
            seconds_total=t.elapsed,
        )

    def _query(self, *, use_iep: bool):
        from repro.core.query import MatchQuery

        return MatchQuery(
            pattern=self.pattern,
            mode="directed",
            use_iep=use_iep,
            max_restriction_sets=self.max_restriction_sets,
        )

    def count(
        self,
        graph: DiGraph,
        *,
        use_iep: bool = False,
        report: DirectedPlanReport | None = None,
        backend=None,
    ) -> int:
        """Count distinct directed embeddings.

        Dispatches through the unified session facade and its backend
        registry (:mod:`repro.core.backend`); directed plans are served
        by the compiled and vectorised fast paths (IEP-free plans), with
        ``backend="parallel"`` distributing prefix tasks over worker
        processes.  An explicit ``report`` executes that exact plan;
        otherwise plans are cached on the graph's shared session.
        """
        if report is not None:
            from repro.core.backend import MatchContext, select_backend

            ctx = MatchContext(graph=graph, plan=report.plan, mode="directed")
            return select_backend(ctx, backend).count(ctx)
        from repro.core.session import get_session

        return get_session(graph).count(
            self._query(use_iep=use_iep), backend=backend
        ).count

    def match(
        self,
        graph: DiGraph,
        *,
        limit: int | None = None,
        report: DirectedPlanReport | None = None,
        backend=None,
    ) -> Iterator[tuple[int, ...]]:
        """Yield distinct directed embeddings (tuples by pattern vertex)."""
        if report is not None:
            if report.plan.iep_k:
                raise ValueError(
                    "enumeration requires a plan compiled with iep_k=0"
                )
            from repro.core.backend import MatchContext, select_backend

            ctx = MatchContext(graph=graph, plan=report.plan, mode="directed")
            chosen = select_backend(ctx, backend, for_enumeration=True)
            return chosen.enumerate_embeddings(ctx, limit=limit)
        from repro.core.session import get_session

        return get_session(graph).enumerate(
            self._query(use_iep=False), limit=limit, backend=backend
        )


def count_directed(graph: DiGraph, pattern: DiPattern, *, backend=None, **kwargs) -> int:
    """One-shot: plan + count directed embeddings."""
    return DirectedMatcher(pattern, **kwargs).count(graph, backend=backend)


def match_directed(
    graph: DiGraph,
    pattern: DiPattern,
    *,
    limit: int | None = None,
    backend=None,
    **kwargs,
) -> Iterator[tuple[int, ...]]:
    """One-shot: plan + enumerate directed embeddings."""
    return DirectedMatcher(pattern, **kwargs).match(graph, limit=limit, backend=backend)
