"""Labeled pattern matching: GraphPi's machinery + label constraints.

The pipeline is the unlabeled one with three changes:

1. **Restrictions** come from the *label-preserving* automorphism
   subgroup (:func:`repro.pattern.labeled.labeled_automorphisms`) — a
   restriction between differently-labeled vertices would be meaningless
   (they can never swap) and one derived from a label-breaking symmetry
   would wrongly discard embeddings.  Algorithm 1 is reused by running
   its recursion on the labeled subgroup.
2. **Candidates** are filtered by label at every depth (a vectorised
   mask on the sorted candidate array, preserving sortedness).
3. **The cost model**'s loop sizes shrink by the label frequency; we
   scale l_i by the data-graph frequency of the wanted label — the
   obvious estimator, and enough to rank configurations.

IEP counting composes untouched: the inner candidate sets are
label-filtered before the partition formula runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import Configuration, ExecutionPlan, compile_plan
from repro.core.engine import Engine
from repro.core.iep import IEPCounter
from repro.core.perf_model import PerformanceModel
from repro.core.restrictions import (
    NonUniformOvercountError,
    RestrictionSet,
    surviving_permutations,
)
from repro.core.schedule import generate_schedules, intersection_free_suffix_length
from repro.graph.labeled import LabeledGraph
from repro.graph.stats import GraphStats
from repro.pattern.labeled import LabeledPattern, labeled_automorphisms
from repro.pattern.permutation import is_identity


def labeled_restriction_sets(lp: LabeledPattern, *, max_sets: int | None = 64
                             ) -> list[RestrictionSet]:
    """Algorithm 1 on the label-preserving automorphism subgroup."""
    group = labeled_automorphisms(lp)
    if len(group) == 1:
        return [frozenset()]

    results: list[RestrictionSet] = []
    seen: set[RestrictionSet] = set()

    def recurse(pg, res_set: RestrictionSet) -> None:
        if max_sets is not None and len(results) >= max_sets:
            return
        if len(pg) <= 1:
            if _validate_labeled(lp, res_set, len(group)):
                results.append(res_set)
            return
        for perm in pg:
            if is_identity(perm):
                continue
            for vertex, image in enumerate(perm):
                if image == vertex or perm[image] != vertex:
                    continue
                new_set = frozenset(res_set | {(vertex, image)})
                if new_set in seen:
                    continue
                seen.add(new_set)
                recurse(surviving_permutations(pg, new_set), new_set)
                if max_sets is not None and len(results) >= max_sets:
                    return

    recurse(group, frozenset())
    if not results:
        raise RuntimeError(f"no valid labeled restriction set for {lp!r}")
    return sorted(set(results), key=lambda rs: (len(rs), sorted(rs)))


def _validate_labeled(lp: LabeledPattern, res_set: RestrictionSet, group_order: int) -> bool:
    """Complete-graph validation against the labeled subgroup.

    On K_n with *matching labels per orbit* every labeled assignment in
    an orbit of the labeled subgroup is an embedding; the restricted
    count per orbit must be exactly one.  Enumerating rank orderings and
    checking per-coset satisfaction mirrors the unlabeled validator but
    against the labeled subgroup's cosets.
    """
    from itertools import permutations as _perms

    n = lp.n_vertices
    group = labeled_automorphisms(lp)
    satisfied_per_coset: dict[tuple, int] = {}
    for ranks in _perms(range(n)):
        coset = min(tuple(ranks[sigma[v]] for v in range(n)) for sigma in group)
        ok = all(ranks[g] > ranks[s] for g, s in res_set)
        satisfied_per_coset[coset] = satisfied_per_coset.get(coset, 0) + (1 if ok else 0)
    counts = set(satisfied_per_coset.values())
    return counts == {1}


class LabeledIEPCounter(IEPCounter):
    """IEP evaluator whose inner candidate sets are label-filtered.

    §IV-D composes with labels untouched: the partition formula works on
    arbitrary finite sets, so filtering each inner candidate array to
    the wanted label *before* the formula runs is all that changes.  The
    overcount divisor must come from the *labeled* subgroup (handled at
    compile time via ``compile_plan(..., auts=labeled_automorphisms)``).
    """

    def __init__(self, lgraph: LabeledGraph, plan: ExecutionPlan,
                 lpattern: LabeledPattern):
        super().__init__(lgraph.graph, plan)
        self.lgraph = lgraph
        schedule = plan.config.schedule
        self._inner_labels = tuple(
            lpattern.labels[schedule[pos]] for pos in self._inner_positions
        )

    def _inner_sets(self, assigned):
        sets = super()._inner_sets(assigned)
        return [
            self.lgraph.filter_by_label(arr, label)
            for arr, label in zip(sets, self._inner_labels)
        ]


class LabeledEngine(Engine):
    """The nested-loop engine with per-depth label filtering."""

    def __init__(self, lgraph: LabeledGraph, plan: ExecutionPlan,
                 lpattern: LabeledPattern):
        super().__init__(lgraph.graph, plan)
        self.lgraph = lgraph
        # wanted label per depth = label of the pattern vertex scheduled there
        schedule = plan.config.schedule
        self._depth_labels = tuple(lpattern.labels[v] for v in schedule)
        if plan.iep_k > 0:
            self._iep = LabeledIEPCounter(lgraph, plan, lpattern)

    def candidates(self, depth, assigned):
        cand = super().candidates(depth, assigned)
        return self.lgraph.filter_by_label(cand, self._depth_labels[depth])


@dataclass(frozen=True)
class LabeledPlanReport:
    configuration: Configuration
    plan: ExecutionPlan
    predicted_cost: float
    n_restriction_sets: int
    n_schedules: int


class LabeledMatcher:
    """Plan + execute labeled pattern matching."""

    def __init__(self, lpattern: LabeledPattern, *, max_restriction_sets: int | None = 64):
        if not lpattern.pattern.is_connected():
            raise ValueError("pattern must be connected")
        self.lpattern = lpattern
        self.max_restriction_sets = max_restriction_sets
        # Lazy: count()/match() route through the session layer, whose
        # planner builds its own matcher — eager generation here would
        # run Algorithm 1 twice per cold call.
        self._rset_cache: list[RestrictionSet] | None = None
        self._schedule_cache: list | None = None

    @property
    def _rsets(self) -> list[RestrictionSet]:
        if self._rset_cache is None:
            self._rset_cache = labeled_restriction_sets(
                self.lpattern, max_sets=self.max_restriction_sets
            )
        return self._rset_cache

    @property
    def _schedules(self) -> list:
        if self._schedule_cache is None:
            self._schedule_cache = generate_schedules(self.lpattern.pattern)
        return self._schedule_cache

    def plan(
        self,
        lgraph: LabeledGraph,
        *,
        use_iep: bool = False,
        stats: GraphStats | None = None,
    ) -> LabeledPlanReport:
        if stats is None:
            stats = GraphStats.of(lgraph.graph)
        model = PerformanceModel(stats)
        hist = lgraph.label_histogram()
        n = max(1, lgraph.n_vertices)

        best = None
        for schedule in self._schedules:
            # Label-frequency weight: product of per-depth frequencies
            # scales every loop size, so it scales total cost.
            weight = 1.0
            for v in schedule:
                weight *= hist.get(self.lpattern.labels[v], 0) / n
            for rs in self._rsets:
                config = Configuration(self.lpattern.pattern, schedule, rs)
                plan = config.compile()
                from repro.core.perf_model import estimate_cost

                cost = estimate_cost(plan, stats) * max(weight, 1e-12)
                if best is None or cost < best[0]:
                    best = (cost, config, plan)
        assert best is not None
        cost, config, plan = best
        if use_iep:
            # Recompile the winner with the largest uniform-overcount IEP
            # suffix; the divisor group is the *labeled* subgroup, whose
            # symmetry our restriction sets break.
            group = labeled_automorphisms(self.lpattern)
            iep_k = intersection_free_suffix_length(
                self.lpattern.pattern, config.schedule
            )
            while iep_k > 0:
                try:
                    plan = compile_plan(config, iep_k=iep_k, auts=group)
                    break
                except NonUniformOvercountError:
                    iep_k -= 1  # k = 1 drops nothing, so this terminates
        return LabeledPlanReport(
            configuration=config,
            plan=plan,
            predicted_cost=cost,
            n_restriction_sets=len(self._rsets),
            n_schedules=len(self._schedules),
        )

    def _query(self, *, use_iep: bool):
        from repro.core.query import MatchQuery

        return MatchQuery(
            pattern=self.lpattern,
            mode="labeled",
            use_iep=use_iep,
            max_restriction_sets=self.max_restriction_sets,
        )

    def count(self, lgraph: LabeledGraph, *, use_iep: bool = False, backend=None) -> int:
        """Count labeled embeddings through the unified session facade.

        Label filtering lives in the interpreter engine family, so the
        compiled-first default resolves to the interpreter;
        ``backend="parallel"`` fans prefix tasks out to workers (which
        rebuild the labeled engine via the registry).  Plans are cached
        on the graph's shared session, so repeat calls skip planning.
        """
        from repro.core.session import get_session

        return get_session(lgraph).count(
            self._query(use_iep=use_iep), backend=backend
        ).count

    def match(self, lgraph: LabeledGraph, *, limit: int | None = None, backend=None):
        from repro.core.session import get_session

        return get_session(lgraph).enumerate(
            self._query(use_iep=False), limit=limit, backend=backend
        )


def labeled_count(lgraph: LabeledGraph, lpattern: LabeledPattern, *, backend=None) -> int:
    """One-shot labeled counting (through the shared session's plan cache)."""
    return LabeledMatcher(lpattern).count(lgraph, backend=backend)


def labeled_bruteforce_count(lgraph: LabeledGraph, lpattern: LabeledPattern) -> int:
    """Oracle for tests: naive backtracking, divided by the labeled |Aut|."""
    n = lpattern.n_vertices
    graph = lgraph.graph
    if n > graph.n_vertices:
        return 0
    pattern = lpattern.pattern
    assignment: list[int] = []
    used: set[int] = set()
    total = 0

    def backtrack(v: int) -> None:
        nonlocal total
        if v == n:
            total += 1
            return
        for cand in range(graph.n_vertices):
            if cand in used or lgraph.label_of(cand) != lpattern.labels[v]:
                continue
            if all(
                graph.has_edge(assignment[p], cand)
                for p in range(v)
                if pattern.has_edge(p, v)
            ):
                assignment.append(cand)
                used.add(cand)
                backtrack(v + 1)
                used.remove(cand)
                assignment.pop()

    backtrack(0)
    aut = len(labeled_automorphisms(lpattern))
    q, r = divmod(total, aut)
    if r:
        raise AssertionError("labeled assignment count not divisible by labeled |Aut|")
    return q
