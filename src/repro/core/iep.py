"""Counting with the Inclusion–Exclusion Principle (§IV-D, Algorithm 2).

After the outer ``n-k`` loops have bound their vertices, the innermost
``k`` pattern vertices are pairwise non-adjacent, so each has a candidate
set ``S_i`` fully determined by the outer assignment (an intersection of
neighbourhoods of bound vertices, minus the bound vertices themselves).
The number of ways to finish the embedding is

    |S_IEP| = #{(e_1..e_k) : e_i ∈ S_i, all e_i distinct}.

The paper computes this by inclusion–exclusion over the "equality events"
``A_{i,j} = {tuples with e_i = e_j}``; Algorithm 2 evaluates each
intersection of events by splitting the equality graph into connected
components and multiplying ``|∩_{i∈C} S_i|`` over components ``C``.

Summing over all 2^(k(k-1)/2) subsets of pairs and grouping by the
induced component partition collapses into the **partition-lattice
formula**

    |S_IEP| = Σ_{partitions π of [k]}  Π_{B ∈ π} μ(|B|) · |∩_{i∈B} S_i|,
    μ(m) = (-1)^(m-1) · (m-1)!

(Bell(k) terms instead of 2^(k(k-1)/2)).  Both evaluations are
implemented; tests assert they agree, and the benchmark suite ablates
them.  Component/block intersections are cached because distinct
partitions reuse the same blocks.

Inner-loop restrictions cannot be enforced inside the IEP (the tuples
are never enumerated), so plans drop them and the engine divides by the
number of automorphisms that survive the remaining restrictions
(``plan.iep_overcount``) — the paper's final paragraph of §IV-D.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import combinations
from math import factorial
from typing import Iterator, Sequence

import numpy as np

from repro.graph.csr import Graph
from repro.graph.intersection import bounded_slice, contains, intersect_many


@lru_cache(maxsize=32)
def set_partitions(k: int) -> tuple[tuple[tuple[int, ...], ...], ...]:
    """All partitions of {0..k-1} into non-empty blocks (Bell(k) many)."""
    if k < 0:
        raise ValueError("k must be non-negative")
    if k == 0:
        return ((),)
    out: list[tuple[tuple[int, ...], ...]] = []

    def rec(element: int, blocks: list[list[int]]) -> None:
        if element == k:
            out.append(tuple(tuple(b) for b in blocks))
            return
        for b in blocks:
            b.append(element)
            rec(element + 1, blocks)
            b.pop()
        blocks.append([element])
        rec(element + 1, blocks)
        blocks.pop()

    rec(0, [])
    return tuple(out)


def partition_coefficient(partition: Sequence[Sequence[int]]) -> int:
    """μ(π) = Π_B (-1)^(|B|-1) (|B|-1)! — the partition-lattice Möbius weight."""
    coeff = 1
    for block in partition:
        m = len(block)
        coeff *= (-1) ** (m - 1) * factorial(m - 1)
    return coeff


def count_distinct_tuples(sets: Sequence[np.ndarray]) -> int:
    """|{(e_1..e_k) ∈ S_1×…×S_k : all distinct}| via the partition formula.

    ``sets`` are sorted vertex arrays.  Identical arrays may be passed
    by reference; caching keys on ``id`` of the arrays per call.
    """
    k = len(sets)
    if k == 0:
        return 1
    cache: dict[frozenset[int], int] = {}

    def block_card(block: Sequence[int]) -> int:
        key = frozenset(id(sets[i]) for i in block)
        if key not in cache:
            arrays = {id(sets[i]): sets[i] for i in block}
            inter = intersect_many(list(arrays.values()))
            cache[key] = len(inter)
        return cache[key]

    total = 0
    for partition in set_partitions(k):
        term = partition_coefficient(partition)
        for block in partition:
            if term == 0:
                break
            term *= block_card(block)
        total += term
    return total


def count_distinct_tuples_pairs(sets: Sequence[np.ndarray]) -> int:
    """The paper's literal formulation: IEP over subsets of equality pairs.

    Exponential in k(k-1)/2 — retained as the executable specification
    (tests assert equality with the partition formula) and for the
    ablation benchmark.
    """
    k = len(sets)
    if k == 0:
        return 1
    pairs = list(combinations(range(k), 2))
    total = 0
    for mask in range(1 << len(pairs)):
        chosen = [pairs[i] for i in range(len(pairs)) if mask >> i & 1]
        total += (-1) ** len(chosen) * _event_intersection_cardinality(sets, k, chosen)
    return total


def _event_intersection_cardinality(
    sets: Sequence[np.ndarray], k: int, pairs: Sequence[tuple[int, int]]
) -> int:
    """Algorithm 2: |A_{i1,j1} ∩ … ∩ A_{im,jm}|.

    Union-find the equality pairs into connected components; multiply
    |∩_{i∈C} S_i| over components.
    """
    parent = list(range(k))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for i, j in pairs:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[rj] = ri
    comps: dict[int, list[int]] = {}
    for i in range(k):
        comps.setdefault(find(i), []).append(i)
    result = 1
    for comp in comps.values():
        inter = intersect_many([sets[i] for i in comp]) if len(comp) > 1 else sets[comp[0]]
        result *= len(inter)
        if result == 0:
            return 0
    return result


class IEPCounter:
    """Per-plan IEP evaluator bound to a graph.

    For one outer assignment it materialises each inner vertex's
    candidate set — neighbourhood intersections, sliced by any
    outer↔inner restriction bounds the plan kept — removes bound
    vertices, and applies the partition formula.  Candidate sets are
    cached by their (dependency vertices, bounds) signature, because
    different inner vertices frequently share dependencies.
    """

    def __init__(self, graph: Graph, plan):
        self.graph = graph
        self.plan = plan
        n = plan.n
        k = plan.iep_k
        if k <= 0:
            raise ValueError("IEPCounter requires a plan with iep_k > 0")
        self._inner_positions = list(range(n - k, n))
        self._inner_deps: list[tuple[int, ...]] = [plan.deps[pos] for pos in self._inner_positions]
        self._partitions = set_partitions(k)

    def _inner_sets(self, assigned: Sequence[int]) -> list[np.ndarray]:
        """Materialise the k inner candidate arrays for one outer
        assignment.  Overridden by the directed counter, which draws from
        out-/in-neighbourhoods instead."""
        graph = self.graph
        plan = self.plan
        # Distinct (dependencies, bounds) signatures → shared arrays.
        raw_cache: dict[tuple, np.ndarray] = {}
        sets: list[np.ndarray] = []
        for pos, deps in zip(self._inner_positions, self._inner_deps):
            verts = frozenset(assigned[j] for j in deps)
            lo, hi = self._bounds(pos, assigned)
            key = (verts, lo, hi)
            if key not in raw_cache:
                if verts:
                    arr = intersect_many([graph.neighbors(v) for v in verts])
                else:
                    arr = graph.vertices()
                if lo is not None or hi is not None:
                    arr = bounded_slice(arr, lo, hi)
                raw_cache[key] = arr
            sets.append(raw_cache[key])
        return sets

    def _bounds(self, pos: int, assigned: Sequence[int]) -> tuple[int | None, int | None]:
        plan = self.plan
        lo: int | None = None
        for j in plan.lower[pos]:
            v = assigned[j]
            if lo is None or v > lo:
                lo = v
        hi: int | None = None
        for j in plan.upper[pos]:
            v = assigned[j]
            if hi is None or v < hi:
                hi = v
        return lo, hi

    def count_inner(self, assigned: Sequence[int]) -> int:
        """|S_IEP| for the current outer assignment (``len == n - k``)."""
        sets = self._inner_sets(assigned)

        # Cardinality of a block intersection minus bound vertices.
        card_cache: dict[frozenset[int], int] = {}

        def block_card(block: Sequence[int]) -> int:
            key = frozenset(id(sets[i]) for i in block)
            if key not in card_cache:
                uniq = {id(sets[i]): sets[i] for i in block}
                inter = (
                    next(iter(uniq.values()))
                    if len(uniq) == 1
                    else intersect_many(list(uniq.values()))
                )
                exclude = sum(1 for a in assigned if contains(inter, a))
                card_cache[key] = len(inter) - exclude
            return card_cache[key]

        total = 0
        for partition in self._partitions:
            term = partition_coefficient(partition)
            for block in partition:
                if term == 0:
                    break
                term *= block_card(block)
            total += term
        return total
