"""Algorithm 1: 2-cycle based automorphism elimination (§IV-A).

A *restriction* is an ordered pair ``(g, s)`` of pattern vertices meaning
``id(g) > id(s)`` — the data vertex bound to ``g`` must have a larger id
than the one bound to ``s``.  A *restriction set* eliminates redundancy
when, for every embedding, exactly one member of its automorphism orbit
satisfies all restrictions.

GraphPi's contribution (vs. GraphZero) is generating **all** minimal
restriction sets instead of a single one, because different sets prune
the DFS tree at different loop depths and differ several-fold in cost.

The algorithm mirrors the paper exactly:

1. enumerate the automorphism group ``pg`` of the pattern;
2. recursively: pick any 2-cycle ``(a b)`` occurring in any surviving
   permutation, branch on adding the restriction ``id(a) > id(b)``
   (both orientations arise because the scan visits both ``a`` and
   ``b``);
3. drop every permutation that the enlarged set now *eliminates* — a
   permutation ``p`` is eliminated iff the directed graph containing
   edges ``g→s`` and ``p(g)→p(s)`` for every restriction has a cycle
   (``no_conflict``, lines 24–29);
4. when only the identity survives, ``validate`` the set by counting on
   an n-vertex complete graph: with restrictions the count must be
   ``n!/|Aut|`` (lines 19–23).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import permutations as _permutations
from math import factorial

from repro.pattern.automorphism import automorphisms
from repro.pattern.pattern import Pattern
from repro.pattern.permutation import Perm, is_identity

#: ``(g, s)`` means ``id(g) > id(s)``.
Restriction = tuple[int, int]
RestrictionSet = frozenset[Restriction]


def no_conflict(perm: Perm, res_set: frozenset[Restriction] | set[Restriction]) -> bool:
    """True iff ``perm`` is *not* eliminated by ``res_set``.

    Paper lines 24–29: build a directed graph with edges
    ``(g → s)`` and ``(perm[g] → perm[s])`` for each restriction; the
    permutation survives iff the graph is acyclic.

    Intuition: if an embedding ``e`` satisfies the restrictions, its
    automorphic image under ``perm`` satisfies them too only when the
    combined ordering constraints are consistent (acyclic).  A cycle
    means at most one of the pair {e, perm·e} can ever satisfy the set,
    i.e. the permutation's redundancy is eliminated.
    """
    edges: set[tuple[int, int]] = set()
    vertices: set[int] = set()
    for g, s in res_set:
        edges.add((g, s))
        edges.add((perm[g], perm[s]))
        vertices.update((g, s, perm[g], perm[s]))
    # Kahn's algorithm for acyclicity on this tiny digraph.
    indeg = {v: 0 for v in vertices}
    out: dict[int, list[int]] = {v: [] for v in vertices}
    for a, b in edges:
        out[a].append(b)
        indeg[b] += 1
    queue = [v for v in vertices if indeg[v] == 0]
    visited = 0
    while queue:
        v = queue.pop()
        visited += 1
        for w in out[v]:
            indeg[w] -= 1
            if indeg[w] == 0:
                queue.append(w)
    return visited == len(vertices)


def surviving_permutations(
    perms: list[Perm], res_set: frozenset[Restriction] | set[Restriction]
) -> list[Perm]:
    """The subset of ``perms`` not eliminated by ``res_set``."""
    return [p for p in perms if no_conflict(p, res_set)]


def validate_restriction_set(
    pattern: Pattern, res_set: RestrictionSet, *, auts: list[Perm] | None = None
) -> bool:
    """Line 20's ``validate``: exact counting check on the complete graph.

    On K_n every injective assignment of pattern vertices to the n data
    vertices is an embedding, so the unrestricted count is n! and each
    orbit has exactly ``|Aut|`` members.  The set is correct iff the
    restricted count equals ``n!/|Aut|`` — i.e. exactly one orbit member
    satisfies the restrictions.

    We count directly over rank assignments instead of running the
    matcher: an assignment is a permutation ``ranks`` with
    ``ranks[v]`` = id of the data vertex bound to pattern vertex ``v``.

    ``auts`` overrides the automorphism group — the directed extension
    passes the directed subgroup (on the complete *digraph* every
    injective assignment of a directed pattern is likewise an embedding,
    so the identity ``count == n!/|Aut|`` carries over verbatim).
    """
    n = pattern.n_vertices
    if auts is None:
        auts = automorphisms(pattern)
    expected, remainder = divmod(factorial(n), len(auts))
    if remainder:  # |Aut| divides n! by Lagrange's theorem
        raise AssertionError("automorphism count must divide n!")
    ranks = _rank_matrix(n)
    mask = None
    for g, s in res_set:
        cond = ranks[:, g] > ranks[:, s]
        mask = cond if mask is None else mask & cond
    count = len(ranks) if mask is None else int(mask.sum())
    return count == expected


_rank_matrices: dict[int, "object"] = {}


def _rank_matrix(n: int):
    """All n! rank assignments as an (n!, n) int8 array (cached)."""
    import numpy as np

    if n not in _rank_matrices:
        if n > 9:
            raise ValueError("pattern too large for factorial enumeration")
        _rank_matrices[n] = np.array(list(_permutations(range(n))), dtype=np.int8)
    return _rank_matrices[n]


@dataclass
class RestrictionGenerator:
    """Algorithm 1 driver with memoised branch exploration.

    The paper's recursion revisits identical partial restriction sets
    through different permutation orders; ``_seen`` collapses those.
    ``max_sets`` caps the enumeration for patterns with huge automorphism
    groups (a 7-clique has 5 040), exactly like a production system
    would bound preprocessing.
    """

    pattern: Pattern
    validate: bool = True
    max_sets: int | None = None
    #: Override the automorphism group (the directed extension passes the
    #: direction-preserving subgroup; ``None`` = the full undirected group).
    auts: list[Perm] | None = None
    _seen: set[RestrictionSet] = field(default_factory=set, repr=False)
    _results: list[RestrictionSet] = field(default_factory=list, repr=False)

    def generate(self) -> list[RestrictionSet]:
        """All (deduplicated) restriction sets that reduce Aut to identity."""
        self._seen.clear()
        self._results.clear()
        perms = self.auts if self.auts is not None else automorphisms(self.pattern)
        if len(perms) == 1:
            # Asymmetric pattern: the empty set is already complete.
            return [frozenset()]
        self._generate(perms, frozenset())
        # Deterministic order: smaller sets first, then lexicographic.
        uniq = sorted(set(self._results), key=lambda rs: (len(rs), sorted(rs)))
        return uniq

    # -- the recursive `generate` of Algorithm 1 -------------------------
    def _generate(self, pg: list[Perm], res_set: RestrictionSet) -> None:
        if self.max_sets is not None and len(self._results) >= self.max_sets:
            return
        if len(pg) <= 1:
            # Only the identity survives; keep the set if it validates.
            if not self.validate or validate_restriction_set(
                self.pattern, res_set, auts=self.auts
            ):
                self._results.append(res_set)
            return
        found_2cycle = False
        for perm in pg:
            if is_identity(perm):
                continue
            for vertex, image in enumerate(perm):
                # line 11: a 2-cycle — vertex == perm[perm[vertex]],
                # excluding fixed points.
                if image == vertex or perm[image] != vertex:
                    continue
                found_2cycle = True
                new_set = frozenset(res_set | {(vertex, image)})
                if new_set in self._seen:
                    continue
                self._seen.add(new_set)
                remaining = surviving_permutations(pg, new_set)
                self._generate(remaining, new_set)
                if self.max_sets is not None and len(self._results) >= self.max_sets:
                    return
        if not found_2cycle:
            self._generate_orbit_anchor(pg, res_set)

    def _generate_orbit_anchor(self, pg: list[Perm], res_set: RestrictionSet) -> None:
        """Fallback when no surviving permutation contains a 2-cycle.

        The paper's scan (lines 9–12) assumes some survivor exposes a
        2-cycle, which holds for the full automorphism group of every
        undirected pattern it evaluates — but *subgroups* can be 2-cycle
        free: the direction-preserving group of a directed n-cycle is the
        pure rotation group C_n, whose non-identity elements are single
        n-cycles.  (§II-A claims the directed extension is easy; this is
        the one genuine gap.)

        The classic orbit-anchoring step of symmetry breaking
        [Grochow–Kellis] covers it: pick a vertex ``v`` in a non-trivial
        orbit of the surviving group and force it to carry the minimum id
        of the orbit — restrictions ``id(u) > id(v)`` for every other
        orbit member ``u``.  Any survivor moving ``v`` to some ``u`` is
        then eliminated (``no_conflict`` sees the 2-edge cycle
        ``u → v`` / ``v → u``), so the group strictly shrinks and the
        recursion terminates.  Each anchor choice yields a different
        candidate set, preserving GraphPi's multiple-sets property;
        ``validate`` still gates final acceptance.
        """
        from repro.pattern.automorphism import orbits

        for orbit in orbits(pg):
            if len(orbit) <= 1:
                continue
            for v in orbit:
                new_set = frozenset(res_set | {(u, v) for u in orbit if u != v})
                if new_set in self._seen:
                    continue
                self._seen.add(new_set)
                remaining = surviving_permutations(pg, new_set)
                if len(remaining) >= len(pg):  # pragma: no cover - defensive
                    continue
                self._generate(remaining, new_set)
                if self.max_sets is not None and len(self._results) >= self.max_sets:
                    return


def generate_restriction_sets(
    pattern: Pattern, *, validate: bool = True, max_sets: int | None = None
) -> list[RestrictionSet]:
    """Convenience wrapper for :class:`RestrictionGenerator`.

    Returns at least one set for any pattern (the empty set when the
    pattern is asymmetric).
    """
    sets = RestrictionGenerator(pattern, validate=validate, max_sets=max_sets).generate()
    if not sets:
        raise RuntimeError(
            f"Algorithm 1 produced no valid restriction set for {pattern!r}; "
            "this should be impossible for a finite permutation group"
        )
    return sets


def restriction_overcount_factor(pattern: Pattern, res_set) -> int:
    """How many automorphisms survive ``res_set`` (the `no_conflict` count).

    This is the quantity §IV-D *describes* for the IEP division, but it
    is only an upper bound on the true per-embedding multiplicity (for
    the triangle with one kept restriction it yields 5 where the true
    factor is 3).  The engine therefore uses
    :func:`iep_overcount_multiplicity` instead; this function is kept
    for the paper-fidelity tests that document the discrepancy.
    """
    perms = automorphisms(pattern)
    return len(surviving_permutations(perms, frozenset(res_set)))


class NonUniformOvercountError(ValueError):
    """Raised when a partial restriction set over/under-counts unevenly.

    If the number of orbit members satisfying the kept restrictions is
    not the same for every embedding, no constant divisor can correct
    the IEP total; the caller must shrink the IEP suffix (``iep_k``)
    until the dropped set is empty.
    """


_multiplicity_cache: dict[tuple, int] = {}


def iep_overcount_multiplicity(pattern: Pattern, kept_set, *, auts=None) -> int:
    """Exact per-embedding multiplicity under a *partial* restriction set.

    Every embedding's automorphism orbit corresponds to a coset
    ``{ranks∘σ : σ ∈ Aut}`` of rank bijections; the IEP total counts each
    embedding once per orbit member satisfying ``kept_set``.  This
    function enumerates all n! rank bijections (n ≤ 9 for patterns),
    groups them into cosets via a canonical code, and returns the
    satisfying count per coset — verifying it is the same for every
    coset (else :class:`NonUniformOvercountError`).

    A complete valid set yields 1; the empty set yields ``|Aut|``.

    ``auts`` overrides the group (the directed extension passes the
    direction-preserving subgroup — the coset argument only needs *a*
    group acting on the vertices, not specifically the undirected one).
    """
    import numpy as np

    kept = frozenset(kept_set)
    key = (
        pattern._adj_bits,
        kept,
        None if auts is None else tuple(tuple(a) for a in auts),
    )
    if key in _multiplicity_cache:
        return _multiplicity_cache[key]

    n = pattern.n_vertices
    if auts is None:
        auts = automorphisms(pattern)
    if not kept:
        _multiplicity_cache[key] = len(auts)
        return len(auts)

    ranks = np.array(list(_permutations(range(n))), dtype=np.int64)
    sat = np.ones(len(ranks), dtype=bool)
    for g, s in kept:
        sat &= ranks[:, g] > ranks[:, s]

    # Canonical coset code: the lexicographic minimum of the encoded rows
    # {ranks∘σ}; (ranks∘σ)[v] = ranks[σ[v]] is a column permutation.
    weights = (np.int64(n) ** np.arange(n - 1, -1, -1)).astype(np.int64)
    canon = None
    for sigma in auts:
        codes = ranks[:, list(sigma)] @ weights
        canon = codes if canon is None else np.minimum(canon, codes)

    uniq, inverse = np.unique(canon, return_inverse=True)
    per_coset = np.zeros(len(uniq), dtype=np.int64)
    np.add.at(per_coset, inverse[sat], 1)
    lo, hi = int(per_coset.min()), int(per_coset.max())
    if lo != hi:
        raise NonUniformOvercountError(
            f"kept restrictions {sorted(kept)} give per-orbit multiplicities "
            f"in [{lo}, {hi}] for pattern {pattern.name or pattern!r}; "
            "no constant IEP divisor exists"
        )
    _multiplicity_cache[key] = lo
    return lo


def check_restrictions_applicable(pattern: Pattern, res_set) -> None:
    """Validate vertex indices and irreflexivity of a user-supplied set."""
    n = pattern.n_vertices
    for g, s in res_set:
        if not (0 <= g < n and 0 <= s < n):
            raise ValueError(f"restriction ({g},{s}) references a vertex outside 0..{n - 1}")
        if g == s:
            raise ValueError(f"restriction ({g},{s}) is reflexive")
