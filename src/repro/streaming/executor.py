"""Delta execution: anchored enumeration against live DynamicGraph adjacency.

Two interchangeable strategies, selected per batch by
:class:`~repro.streaming.session.StreamSession`:

* ``"single"`` — pure set algebra on the :class:`DynamicGraph`'s live
  adjacency sets (:meth:`~repro.graph.dynamic.DynamicGraph.neighbors_view`).
  No arrays are built, so a lone update pays only for the handful of
  set probes around the touched edge.
* ``"bulk"``   — the churn-burst path: per-vertex sorted numpy rows,
  maintained incrementally in a cache invalidated only for the two
  endpoints each mutation touches (GraphMini-style auxiliary reuse),
  with candidates formed by the same
  :mod:`repro.graph.intersection` bulk primitives the vectorised
  frontier backend runs on (``intersect_many`` + ``bounded_slice``).
  Row construction is amortised across every update in the burst and
  across every watched query sharing the executor.

Both strategies execute the same :class:`~repro.streaming.delta_plan`
sub-plans and agree exactly (pinned by the streaming tests); ordering
semantics — insert counted in the post-update graph, delete in the
pre-update graph — belong to the session, which mutates the graph and
calls :meth:`DeltaExecutor.invalidate` in the right order.
"""

from __future__ import annotations

import numpy as np

from repro.graph.dynamic import DynamicGraph
from repro.graph.intersection import (
    VERTEX_DTYPE,
    bounded_slice,
    contains,
    intersect_many,
)
from repro.streaming.delta_plan import AnchoredPlan, DeltaPlan

#: strategies apply() can request explicitly.
STRATEGIES = ("single", "bulk")


class DeltaExecutor:
    """Counts embeddings through one data edge, under one graph state."""

    def __init__(self, graph: DynamicGraph):
        self.graph = graph
        self._rows: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # cache maintenance (the session calls this after every mutation)
    # ------------------------------------------------------------------
    def invalidate(self, u: int, v: int) -> None:
        """Drop the sorted rows of the two endpoints a mutation touched."""
        self._rows.pop(u, None)
        self._rows.pop(v, None)

    def invalidate_all(self) -> None:
        self._rows.clear()

    @property
    def cached_rows(self) -> int:
        """How many sorted rows the bulk cache currently holds."""
        return len(self._rows)

    def _row(self, v: int) -> np.ndarray:
        """v's neighbourhood as a sorted numpy row (cached until touched)."""
        row = self._rows.get(v)
        if row is None:
            row = np.fromiter(
                sorted(self.graph.neighbors_view(v)),
                dtype=VERTEX_DTYPE,
                count=self.graph.degree(v),
            )
            self._rows[v] = row
        return row

    # ------------------------------------------------------------------
    # the edge-delta primitive
    # ------------------------------------------------------------------
    def count_edge(self, plan: DeltaPlan, a: int, b: int, *,
                   strategy: str = "single") -> int:
        """Distinct embeddings of ``plan.pattern`` using data edge ``{a, b}``.

        The edge must be present in the current graph state — the
        session guarantees that by counting inserts *after* and deletes
        *before* the mutation.
        """
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}: expected one of {STRATEGIES}"
            )
        count_one = (
            self._count_anchored_sets if strategy == "single"
            else self._count_anchored_bulk
        )
        return sum(count_one(ap, a, b) for ap in plan.anchored)

    # -- set strategy ---------------------------------------------------
    def _count_anchored_sets(self, ap: AnchoredPlan, a: int, b: int) -> int:
        if ap.n_free == 0:
            return 1  # the anchored edge is the whole pattern
        graph = self.graph
        anchors = (a, b)
        bound: list[int] = []

        def candidates(depth: int) -> tuple[set[int], list[set[int]]]:
            sets = [
                graph.neighbors_view(anchors[i])
                for i, used in enumerate(ap.anchor_deps[depth])
                if used
            ]
            sets += [graph.neighbors_view(bound[j]) for j in ap.free_deps[depth]]
            base = min(sets, key=len)
            return base, [s for s in sets if s is not base]

        def bounds(depth: int) -> tuple[int | None, int | None]:
            lo = max((bound[j] for j in ap.lower[depth]), default=None)
            ups = [bound[j] for j in ap.upper[depth]]
            return lo, (min(ups) if ups else None)

        def admissible(w: int, others: list[set[int]],
                       lo: int | None, hi: int | None) -> bool:
            if (lo is not None and w <= lo) or (hi is not None and w >= hi):
                return False
            if w == a or w == b or w in bound:
                return False
            return all(w in s for s in others)

        last = ap.n_free - 1

        def rec(depth: int) -> int:
            base, others = candidates(depth)
            lo, hi = bounds(depth)
            if depth == last:
                return sum(1 for w in base if admissible(w, others, lo, hi))
            total = 0
            for w in base:
                if not admissible(w, others, lo, hi):
                    continue
                bound.append(w)
                total += rec(depth + 1)
                bound.pop()
            return total

        return rec(0)

    # -- bulk strategy --------------------------------------------------
    def _count_anchored_bulk(self, ap: AnchoredPlan, a: int, b: int) -> int:
        if ap.n_free == 0:
            return 1
        anchors = (a, b)
        bound: list[int] = []
        last = ap.n_free - 1

        def candidates(depth: int) -> np.ndarray:
            rows = [
                self._row(anchors[i])
                for i, used in enumerate(ap.anchor_deps[depth])
                if used
            ]
            rows += [self._row(bound[j]) for j in ap.free_deps[depth]]
            cand = intersect_many(rows)
            lo = max((bound[j] for j in ap.lower[depth]), default=None)
            ups = [bound[j] for j in ap.upper[depth]]
            hi = min(ups) if ups else None
            if lo is not None or hi is not None:
                cand = bounded_slice(cand, lo, hi)
            return cand

        def rec(depth: int) -> int:
            cand = candidates(depth)
            if len(cand) == 0:
                return 0
            if depth == last:
                # last-loop shortcut: count candidates, subtracting the
                # already-used vertices present in the window.
                used = sum(1 for w in (a, b, *bound) if contains(cand, w))
                return len(cand) - used
            total = 0
            for w in cand:
                wi = int(w)
                if wi == a or wi == b or wi in bound:
                    continue
                bound.append(wi)
                total += rec(depth + 1)
                bound.pop()
            return total

        return rec(0)
