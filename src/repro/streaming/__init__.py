"""Streaming subsystem: exact pattern counts under edge churn.

``StreamSession`` maintains the counts of watched plain-mode queries
across edge insertions and deletions without full recounts, by
enumerating only the embeddings through each updated edge — anchored
sub-plans whose exactly-once guarantee comes from running GraphPi's
Algorithm 1 against the anchor-stabilising automorphism subgroup.  See
:mod:`repro.streaming.delta_plan` for the derivation and
``docs/architecture.md`` ("Streaming maintenance") for the guide.
"""

from repro.streaming.churn import random_churn
from repro.streaming.delta_plan import (
    AnchoredPlan,
    DeltaPlan,
    build_delta_plan,
    clear_delta_plans,
    dart_orbits,
    delta_plan_for,
)
from repro.streaming.executor import DeltaExecutor
from repro.streaming.session import (
    EdgeUpdate,
    StreamReport,
    StreamSession,
    WatchHandle,
    WatchReport,
    read_churn_file,
)

__all__ = [
    "AnchoredPlan",
    "DeltaPlan",
    "build_delta_plan",
    "clear_delta_plans",
    "dart_orbits",
    "delta_plan_for",
    "DeltaExecutor",
    "EdgeUpdate",
    "StreamReport",
    "StreamSession",
    "WatchHandle",
    "WatchReport",
    "random_churn",
    "read_churn_file",
]
