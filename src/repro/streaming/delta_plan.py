"""Delta planning: anchored sub-plans that count through one data edge.

The streaming invariant this module serves: after inserting edge
``{a, b}`` into a data graph, the pattern count changes by exactly the
number of distinct embeddings that *use* that edge (under edge
semantics an embedding not using it exists before and after); deleting
``{a, b}`` removes exactly the embeddings using it in the pre-deletion
graph.  So incremental maintenance reduces to one primitive — *count
the embeddings through a given data edge, each exactly once* — and
GraphPi's redundancy-elimination machinery (paper §IV-A) is precisely
what makes the "exactly once" part cheap.

The derivation (the docstring the tests pin):

* A *dart* is an ordered pattern edge ``(u, v)``.  For any injective
  homomorphism ``f`` whose image contains the data edge ``{a, b}``,
  exactly **one** dart satisfies ``f(u) = a, f(v) = b`` — distinct
  pattern edges map to distinct data edges, and an edge has two darts
  but only one matches the orientation.  Summing anchored counts
  ``N'_(u,v)(a, b) = |{f : f(u)=a, f(v)=b}|`` over all darts therefore
  counts every such homomorphism exactly once, and dividing by
  ``|Aut|`` turns homomorphisms into distinct embeddings.
* The automorphism group acts on darts; anchored counts are constant on
  each orbit (composing with an automorphism bijects the anchored
  homomorphism sets).  Picking one representative dart ``(u0, v0)`` per
  orbit: ``Σ_orbit N' = (|Aut| / |Stab|) · N'_(u0,v0)`` where ``Stab``
  is the **pointwise stabiliser** of ``u0`` and ``v0``.  The ``|Aut|``
  factors cancel, leaving

      Δ = Σ_{dart orbits}  N'_(u0,v0)(a, b) / |Stab(u0, v0)|

* ``N' / |Stab|`` is the number of ``Stab``-orbits of anchored
  homomorphisms — so running Algorithm 1
  (:class:`repro.core.restrictions.RestrictionGenerator`) against the
  *stabiliser subgroup* yields restriction sets under which each
  anchored embedding is enumerated exactly once, no division at all.
  Because the stabiliser fixes both anchors, every generated
  restriction compares only free vertices (a 2-cycle of a permutation
  never involves its fixed points), which is what lets the executor
  evaluate them as plain id-range bounds on candidate sets.

Each :class:`AnchoredPlan` is the compiled form of one orbit
representative: the anchors, a connectivity-greedy order over the free
pattern vertices, per-depth dependencies split into anchor/free parts,
and the restriction bounds resolved to loop depths exactly like
:func:`repro.core.config.compile_plan` does for full plans.  Plans are
pattern-level objects cached by the same structural fingerprint
component :class:`repro.core.query.MatchQuery` feeds the
``MatchSession`` plan cache, so every ``StreamSession`` watching the
same pattern shares one :class:`DeltaPlan`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.restrictions import Restriction, RestrictionGenerator
from repro.pattern.automorphism import automorphisms, pointwise_stabilizer
from repro.pattern.pattern import Pattern
from repro.pattern.permutation import Perm

#: an ordered pattern edge; ``(u, v)`` anchors u -> a, v -> b.
Dart = tuple[int, int]


def dart_orbits(pattern: Pattern, auts: list[Perm] | None = None) -> list[list[Dart]]:
    """Orbits of the automorphism group acting on ordered pattern edges.

    ``σ · (u, v) = (σ(u), σ(v))``; each orbit is sorted and the orbit
    list is sorted by its minimum, so representatives (``orbit[0]``) are
    deterministic.  The orbit sizes always sum to ``2 · |E_P|``.
    """
    if auts is None:
        auts = automorphisms(pattern)
    darts = [(u, v) for u, v in pattern.edges] + [(v, u) for u, v in pattern.edges]
    seen: set[Dart] = set()
    orbits: list[list[Dart]] = []
    for d in sorted(darts):
        if d in seen:
            continue
        orbit = sorted({(sigma[d[0]], sigma[d[1]]) for sigma in auts})
        seen.update(orbit)
        orbits.append(orbit)
    return sorted(orbits)


def _free_vertex_order(pattern: Pattern, dart: Dart) -> tuple[int, ...]:
    """Connectivity-greedy enumeration order for the non-anchored vertices.

    Most-constrained-first: repeatedly place the free vertex with the
    most already-placed pattern neighbours (ties: higher pattern degree,
    then lower id).  On a connected pattern every free vertex has at
    least one placed neighbour when chosen, so no anchored loop ever
    scans the whole vertex set — the streaming analogue of the paper's
    phase-1 connected-prefix rule.
    """
    placed = {dart[0], dart[1]}
    free = [v for v in range(pattern.n_vertices) if v not in placed]
    degrees = pattern.degrees
    order: list[int] = []
    while free:
        best = max(
            free,
            key=lambda v: (
                sum(1 for p in placed if pattern.has_edge(v, p)),
                degrees[v],
                -v,
            ),
        )
        order.append(best)
        placed.add(best)
        free.remove(best)
    return tuple(order)


@dataclass(frozen=True)
class AnchoredPlan:
    """One orbit representative, compiled for anchored enumeration.

    Depth ``i`` binds ``order[i]``; its candidate set is the
    intersection of the anchors' neighbourhoods flagged by
    ``anchor_deps[i]`` (``(use_a, use_b)``) with the neighbourhoods of
    the earlier free depths in ``free_deps[i]``, windowed by the
    restriction bounds ``lower[i]``/``upper[i]`` (earlier free depths
    whose bound value the candidate must exceed / stay below) — the
    same compiled shape :class:`repro.core.config.ExecutionPlan` uses,
    minus the two loops the anchor replaces.
    """

    dart: Dart
    orbit_size: int
    order: tuple[int, ...]
    anchor_deps: tuple[tuple[bool, bool], ...]
    free_deps: tuple[tuple[int, ...], ...]
    lower: tuple[tuple[int, ...], ...]
    upper: tuple[tuple[int, ...], ...]
    restrictions: frozenset[Restriction]

    @property
    def n_free(self) -> int:
        return len(self.order)

    def describe(self) -> str:
        res = ", ".join(f"id({g})>id({s})" for g, s in sorted(self.restrictions))
        return (
            f"dart {self.dart} (orbit x{self.orbit_size}) "
            f"order={list(self.order)} restrictions=[{res}]"
        )


@dataclass(frozen=True)
class DeltaPlan:
    """Everything needed to count embeddings through one data edge."""

    pattern: Pattern
    anchored: tuple[AnchoredPlan, ...]
    n_automorphisms: int

    def describe(self) -> str:
        name = self.pattern.name or repr(self.pattern)
        parts = "; ".join(p.describe() for p in self.anchored)
        return (
            f"delta plan for {name}: {len(self.anchored)} anchored sub-plans "
            f"(|Aut|={self.n_automorphisms}) — {parts}"
        )


def _choose_restrictions(
    pattern: Pattern, stab: list[Perm], order: tuple[int, ...]
) -> frozenset[Restriction]:
    """Pick the stabiliser-breaking restriction set that prunes earliest.

    Algorithm 1 generally produces several valid sets (GraphPi's core
    observation); for anchored enumeration the cheapest is the one whose
    range windows apply at the shallowest loop depths, so the score sums
    ``n_free - depth`` over each restriction's later endpoint.  Ties
    fall back to generator order (smallest set first).
    """
    if len(stab) == 1:
        return frozenset()
    position = {v: i for i, v in enumerate(order)}
    sets = RestrictionGenerator(pattern, auts=stab, max_sets=64).generate()
    n_free = len(order)

    def score(res_set: frozenset[Restriction]) -> int:
        return sum(n_free - max(position[g], position[s]) for g, s in res_set)

    return max(sets, key=score)


def _compile_anchored(pattern: Pattern, dart: Dart, orbit_size: int,
                      auts: list[Perm]) -> AnchoredPlan:
    u0, v0 = dart
    order = _free_vertex_order(pattern, dart)
    stab = pointwise_stabilizer(auts, [u0, v0])
    restrictions = _choose_restrictions(pattern, stab, order)
    position = {v: i for i, v in enumerate(order)}

    anchor_deps = tuple(
        (pattern.has_edge(v, u0), pattern.has_edge(v, v0)) for v in order
    )
    free_deps = tuple(
        tuple(
            j for j in range(i) if pattern.has_edge(order[i], order[j])
        )
        for i in range(len(order))
    )
    lower: list[list[int]] = [[] for _ in order]
    upper: list[list[int]] = [[] for _ in order]
    for g, s in restrictions:
        # The stabiliser fixes both anchors, so Algorithm 1 run against
        # it can only emit restrictions between free vertices.
        if g not in position or s not in position:
            raise AssertionError(
                f"stabiliser restriction ({g},{s}) touches an anchor of {dart}"
            )
        pg, ps = position[g], position[s]
        if pg > ps:
            lower[pg].append(ps)
        else:
            upper[ps].append(pg)
    return AnchoredPlan(
        dart=dart,
        orbit_size=orbit_size,
        order=order,
        anchor_deps=anchor_deps,
        free_deps=free_deps,
        lower=tuple(tuple(sorted(x)) for x in lower),
        upper=tuple(tuple(sorted(x)) for x in upper),
        restrictions=restrictions,
    )


def build_delta_plan(pattern: Pattern) -> DeltaPlan:
    """One anchored sub-plan per dart orbit (uncached; see :func:`delta_plan_for`)."""
    if not pattern.is_connected():
        raise ValueError("delta maintenance requires a connected pattern")
    if pattern.n_edges < 1:
        raise ValueError(
            "delta maintenance needs a pattern with at least one edge "
            "(edge updates cannot change a single-vertex count)"
        )
    auts = automorphisms(pattern)
    anchored = tuple(
        _compile_anchored(pattern, orbit[0], len(orbit), auts)
        for orbit in dart_orbits(pattern, auts)
    )
    return DeltaPlan(pattern=pattern, anchored=anchored, n_automorphisms=len(auts))


#: structural fingerprint -> DeltaPlan; the key is the same structure
#: component MatchQuery.fingerprint carries, so any two queries the
#: MatchSession plan cache would treat as the same pattern share one
#: delta plan here too.
_DELTA_PLANS: dict[tuple, DeltaPlan] = {}


def _structure_key(pattern: Pattern) -> tuple:
    return ("plain", pattern.n_vertices, tuple(pattern.edges))


def delta_plan_for(pattern: Pattern) -> DeltaPlan:
    """The cached delta plan for a pattern (planning on first sight)."""
    key = _structure_key(pattern)
    plan = _DELTA_PLANS.get(key)
    if plan is None:
        plan = build_delta_plan(pattern)
        _DELTA_PLANS[key] = plan
    return plan


def clear_delta_plans() -> None:
    """Drop the process-wide delta-plan cache (test isolation)."""
    _DELTA_PLANS.clear()
