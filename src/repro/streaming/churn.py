"""Deterministic random edge churn — shared by bench, tests and demos.

One generator, three consumers (``benchmarks/bench_streaming.py``, the
streaming property tests, ``examples/streaming_counts.py``), so the
churn they exercise can never silently diverge.  The sequence is valid
for sequential application by construction: presence is simulated as
edges are drawn, deletes sample only existing edges (O(1) swap-pop,
not a sort per draw) and inserts only absent pairs.
"""

from __future__ import annotations

import random

from repro.graph.csr import Graph
from repro.graph.dynamic import DynamicGraph
from repro.streaming.session import EdgeUpdate


def random_churn(
    graph: DynamicGraph | Graph,
    n_updates: int,
    *,
    seed: int,
    insert_bias: float = 0.6,
) -> list[EdgeUpdate]:
    """A valid mixed insert/delete sequence against ``graph``'s edge set.

    ``insert_bias`` is the probability of drawing an insert while both
    moves are possible (deletes need a live edge, inserts a free pair);
    the default 60/40 bias keeps deletions supplied with material.  The
    graph itself is not touched — the returned list is what callers
    feed to :meth:`StreamSession.apply` (whole, or sliced into batches).
    """
    n = graph.n_vertices
    if n < 2:
        raise ValueError("churn needs a graph with at least two vertices")
    rng = random.Random(seed)
    present = sorted((int(u), int(v)) for u, v in graph.edges())
    index = {e: i for i, e in enumerate(present)}
    full = n * (n - 1) // 2
    updates: list[EdgeUpdate] = []
    for _ in range(n_updates):
        can_delete = bool(present)
        can_insert = len(present) < full
        if not can_delete and not can_insert:  # pragma: no cover - n < 2 only
            raise ValueError("graph admits neither inserts nor deletes")
        if can_delete and (not can_insert or rng.random() >= insert_bias):
            i = rng.randrange(len(present))
            edge = present[i]
            last = present.pop()
            if i < len(present):
                present[i] = last
                index[last] = i
            del index[edge]
            updates.append(EdgeUpdate("-", *edge))
        else:
            while True:
                u, v = rng.randrange(n), rng.randrange(n)
                if u == v:
                    continue
                edge = (u, v) if u < v else (v, u)
                if edge not in index:
                    break
            index[edge] = len(present)
            present.append(edge)
            updates.append(EdgeUpdate("+", *edge))
    return updates
