"""StreamSession: exact pattern counts maintained under edge churn.

The streaming counterpart of :class:`repro.core.session.MatchSession`:
bind a :class:`~repro.graph.dynamic.DynamicGraph` once, ``watch()`` any
number of plain edge-semantics queries, then ``apply()`` batches of
edge insertions/deletions — every watched count is maintained exactly,
by anchored delta enumeration (:mod:`repro.streaming.delta_plan`),
never by recounting the graph.

Semantics (the invariants the property tests pin):

* updates in a batch take effect **sequentially**; an insert's delta is
  counted in the post-insert graph, a delete's in the pre-delete graph,
  so after any batch every watched count equals a full recount on
  ``snapshot()``;
* a batch is **atomic on rejection**: the whole batch is validated
  against a simulated edge overlay before the first mutation, so a
  self-loop, duplicate insert or missing delete raises with the graph
  and every count untouched;
* all watches share one pass over the batch (and one bulk-row cache),
  so the marginal cost of a second watched query is just its anchored
  enumeration, not a second sweep.

Initial counts (and the ``expected_counts()`` cross-check used by tests
and the benchmark) run through the ordinary
:func:`~repro.core.session.get_session` registry on memoised snapshots,
so they hit the same plan cache as any other matching work on the
graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

from repro.core.query import MatchQuery, as_query
from repro.core.session import get_session
from repro.graph.csr import Graph
from repro.graph.dynamic import DynamicGraph
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.streaming.delta_plan import DeltaPlan, delta_plan_for
from repro.streaming.executor import STRATEGIES, DeltaExecutor
from repro.utils.tables import Table
from repro.utils.timing import Timer

#: spellings accepted for the two update operations.
_INSERT_OPS = {"+", "add", "insert", "i"}
_DELETE_OPS = {"-", "remove", "delete", "d"}


@dataclass(frozen=True)
class EdgeUpdate:
    """One edge mutation: ``op`` is ``"+"`` (insert) or ``"-"`` (delete)."""

    op: str
    u: int
    v: int

    def __post_init__(self):
        if self.op not in ("+", "-"):
            raise ValueError(f"unknown update op {self.op!r}: expected '+' or '-'")

    @property
    def is_insert(self) -> bool:
        return self.op == "+"

    @classmethod
    def coerce(cls, item: "EdgeUpdate | tuple") -> "EdgeUpdate":
        """Accept ``EdgeUpdate`` or ``(op, u, v)`` tuples with op aliases."""
        if isinstance(item, EdgeUpdate):
            return item
        try:
            op, u, v = item
        except (TypeError, ValueError):
            raise TypeError(
                f"updates must be EdgeUpdate or (op, u, v) tuples, got {item!r}"
            ) from None
        op = str(op).lower()
        if op in _INSERT_OPS:
            op = "+"
        elif op in _DELETE_OPS:
            op = "-"
        else:
            raise ValueError(
                f"unknown update op {op!r}: expected one of "
                f"{sorted(_INSERT_OPS | _DELETE_OPS)}"
            )
        return cls(op, int(u), int(v))


def read_churn_file(path: str | Path) -> list[EdgeUpdate]:
    """Parse an edge-churn file: one ``+ u v`` / ``- u v`` per line.

    Blank lines and ``#`` comments are skipped.  This is the format the
    CLI ``stream`` command replays.
    """
    updates: list[EdgeUpdate] = []
    for lineno, raw in enumerate(Path(path).read_text().splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 3:
            raise ValueError(
                f"{path}:{lineno}: expected 'OP U V', got {raw.strip()!r}"
            )
        try:
            updates.append(EdgeUpdate.coerce(tuple(parts)))
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: {exc}") from None
    return updates


class WatchHandle:
    """One maintained query: its delta plan and the running exact count."""

    def __init__(self, name: str, query: MatchQuery, plan: DeltaPlan, count: int):
        self.name = name
        self.query = query
        self.plan = plan
        self.count = count
        #: lifetime totals, for introspection and the CLI summary.
        self.updates_seen = 0
        self.seconds_delta = 0.0

    @property
    def pattern(self):
        return self.query.pattern

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WatchHandle({self.name!r}, count={self.count})"


@dataclass(frozen=True)
class WatchReport:
    """One watch's outcome for one batch."""

    name: str
    count_before: int
    count: int
    delta: int
    seconds: float


@dataclass(frozen=True)
class StreamReport:
    """What one ``apply()`` did: per-watch deltas plus batch accounting."""

    n_updates: int
    n_inserts: int
    n_deletes: int
    strategy: str
    seconds: float
    watches: tuple[WatchReport, ...]

    @property
    def counts(self) -> dict[str, int]:
        return {w.name: w.count for w in self.watches}

    @property
    def deltas(self) -> dict[str, int]:
        return {w.name: w.delta for w in self.watches}

    def describe(self) -> str:
        table = Table(
            ["watch", "count", "delta", "ms"],
            title=(
                f"{self.n_updates} updates (+{self.n_inserts}/-{self.n_deletes}, "
                f"{self.strategy} strategy, {self.seconds * 1e3:.1f} ms)"
            ),
        )
        for w in self.watches:
            table.add_row([w.name, w.count, f"{w.delta:+d}", f"{w.seconds * 1e3:.2f}"])
        return table.render()


class StreamSession:
    """A mutable data graph plus incrementally-maintained pattern counts.

    Parameters
    ----------
    graph:
        A :class:`~repro.graph.dynamic.DynamicGraph` (adopted — the
        session mutates it) or an immutable :class:`Graph`, which is
        thawed into a private dynamic copy.
    bulk_threshold:
        Batches of at least this many updates run the executor's bulk
        strategy (sorted numpy rows + frontier intersection kernels);
        smaller batches use direct set algebra.  ``apply(strategy=...)``
        overrides per call.
    allow_vertex_growth:
        Inserts naming vertices beyond the current range grow the graph
        automatically (isolated vertices carry no embeddings of the
        connected ≥2-vertex patterns a watch accepts, so counts are
        unaffected).  Disable to make out-of-range ids an error.
    max_vertex_growth:
        Cap on how many vertices one batch may add implicitly.  Sparse
        external id spaces fill the gap with isolated vertices, so a
        single typo'd id (``+ 0 999999999`` in a churn file) would
        otherwise allocate a billion adjacency sets; past the cap the
        batch is rejected atomically instead.  Pre-size the graph with
        ``add_vertex`` for genuinely huge id spaces.

    >>> stream = StreamSession(DynamicGraph.from_graph(g))
    >>> h = stream.watch(get_pattern("triangle"))
    >>> stream.apply([("+", 0, 5), ("-", 2, 3)]).counts[h.name]
    """

    def __init__(
        self,
        graph: DynamicGraph | Graph,
        *,
        bulk_threshold: int = 8,
        allow_vertex_growth: bool = True,
        max_vertex_growth: int = 4096,
    ):
        if isinstance(graph, Graph):
            graph = DynamicGraph.from_graph(graph)
        elif not isinstance(graph, DynamicGraph):
            raise TypeError(
                f"StreamSession needs a DynamicGraph or Graph, got "
                f"{type(graph).__name__}"
            )
        if bulk_threshold < 1:
            raise ValueError("bulk_threshold must be >= 1")
        if max_vertex_growth < 0:
            raise ValueError("max_vertex_growth must be >= 0")
        self.graph = graph
        self.bulk_threshold = bulk_threshold
        self.allow_vertex_growth = allow_vertex_growth
        self.max_vertex_growth = max_vertex_growth
        self._executor = DeltaExecutor(graph)
        self._watches: dict[str, WatchHandle] = {}
        self._n_batches = 0
        self._n_updates = 0

    # ------------------------------------------------------------------
    # watch management
    # ------------------------------------------------------------------
    def watch(self, query: MatchQuery | Any, *, name: str | None = None) -> WatchHandle:
        """Maintain a query's count; returns the handle holding it.

        Only plain-mode, edge-semantics queries are maintainable: under
        edge semantics an edge update changes exactly the embeddings
        through that edge, which is what the delta plans count.  The
        initial count is a full count on the (memoised) snapshot via the
        ordinary session layer.
        """
        query = as_query(query)
        if query.mode != "plain" or query.semantics != "edge":
            raise ValueError(
                "streaming maintenance covers plain edge-semantics queries; "
                f"got mode={query.mode!r} semantics={query.semantics!r} "
                "(an inserted edge can destroy induced/labeled/directed "
                "matches outside the delta plans' reach)"
            )
        plan = delta_plan_for(query.pattern)
        if name is None:
            base = query.pattern.name or f"pattern-{query.pattern.n_vertices}v"
            name = base
            suffix = 2
            while name in self._watches:
                name = f"{base}-{suffix}"
                suffix += 1
        elif name in self._watches:
            raise ValueError(f"watch name {name!r} already in use")
        initial = int(get_session(self.graph.snapshot()).count(query))
        handle = WatchHandle(name, query, plan, initial)
        self._watches[name] = handle
        return handle

    def unwatch(self, handle: WatchHandle | str) -> None:
        name = handle if isinstance(handle, str) else handle.name
        if name not in self._watches:
            raise KeyError(f"no watch named {name!r}")
        del self._watches[name]

    @property
    def watches(self) -> tuple[WatchHandle, ...]:
        return tuple(self._watches.values())

    def counts(self) -> dict[str, int]:
        """The maintained count of every watch, by name."""
        return {name: h.count for name, h in self._watches.items()}

    def expected_counts(self) -> dict[str, int]:
        """Full recounts on the current snapshot (the testing oracle).

        This is exactly what the maintained counts must equal after any
        batch; the property tests assert it after every ``apply()``.
        """
        session = get_session(self.graph.snapshot())
        return {
            name: int(session.count(h.query)) for name, h in self._watches.items()
        }

    # ------------------------------------------------------------------
    # batch application
    # ------------------------------------------------------------------
    def _validate_batch(self, updates: list[EdgeUpdate]) -> int:
        """Pre-validate the whole batch; returns the vertex count needed.

        Simulates edge presence with an overlay on the live graph so the
        batch is checked *as a sequence* (insert-then-delete of the same
        edge is fine; delete-then-delete is not) without mutating
        anything — rejection leaves the session exactly as it was.
        """
        n_vertices = self.graph.n_vertices
        overlay: dict[tuple[int, int], bool] = {}

        def present(u: int, v: int) -> bool:
            key = (u, v) if u < v else (v, u)
            if key in overlay:
                return overlay[key]
            if u >= n_vertices or v >= n_vertices:
                return False
            return self.graph.has_edge(u, v)

        needed = self.graph.n_vertices
        for up in updates:
            u, v = up.u, up.v
            if u < 0 or v < 0:
                raise ValueError(f"negative vertex id in {up}")
            if u == v:
                raise ValueError(f"self-loop ({u},{u}) not allowed")
            key = (u, v) if u < v else (v, u)
            if up.is_insert:
                if present(u, v):
                    raise KeyError(f"edge ({u},{v}) already present")
                if max(u, v) >= self.graph.n_vertices:
                    if not self.allow_vertex_growth:
                        raise IndexError(
                            f"vertex {max(u, v)} out of range and vertex "
                            "growth is disabled"
                        )
                    needed = max(needed, max(u, v) + 1)
                    growth = needed - self.graph.n_vertices
                    if growth > self.max_vertex_growth:
                        raise ValueError(
                            f"vertex {max(u, v)} would grow the graph by "
                            f"{growth} vertices, over the "
                            f"max_vertex_growth cap of "
                            f"{self.max_vertex_growth} — a typo'd id?  "
                            "Pre-size the graph with add_vertex() if the "
                            "id space really is that sparse"
                        )
                overlay[key] = True
            else:
                if not present(u, v):
                    raise KeyError(f"edge ({u},{v}) not present")
                overlay[key] = False
        return needed

    def apply(
        self,
        updates: Iterable["EdgeUpdate | tuple"],
        *,
        strategy: str | None = None,
    ) -> StreamReport:
        """Apply a batch of edge updates, maintaining every watched count.

        ``strategy`` forces ``"single"`` (set algebra) or ``"bulk"``
        (numpy rows + frontier kernels); the default picks bulk for
        batches of at least :attr:`bulk_threshold` updates.
        """
        batch = [EdgeUpdate.coerce(item) for item in updates]
        if strategy is None:
            strategy = "bulk" if len(batch) >= self.bulk_threshold else "single"
        elif strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}: expected one of {STRATEGIES}"
            )
        needed = self._validate_batch(batch)
        while self.graph.n_vertices < needed:
            self.graph.add_vertex()

        watches = list(self._watches.values())
        before = {h.name: h.count for h in watches}
        deltas = {h.name: 0 for h in watches}
        seconds = {h.name: 0.0 for h in watches}
        n_inserts = 0
        with Timer() as t_batch, span(
            "stream.apply", updates=len(batch), strategy=strategy
        ):
            for up in batch:
                u, v = up.u, up.v
                if up.is_insert:
                    n_inserts += 1
                    self.graph.add_edge(u, v)
                    self._executor.invalidate(u, v)
                    sign = 1
                else:
                    sign = -1
                # one pass serves every watch: the executor (and its
                # bulk-row cache) is shared across queries and updates.
                for h in watches:
                    with Timer() as t, span(
                        "stream.delta",
                        watch=h.name,
                        n_orbits=len(h.plan.anchored),
                    ) as sp:
                        d = self._executor.count_edge(
                            h.plan, u, v, strategy=strategy
                        )
                        sp.set(delta=sign * d)
                    obs_metrics.STREAM_DELTAS.inc()
                    deltas[h.name] += sign * d
                    seconds[h.name] += t.elapsed
                if not up.is_insert:
                    self.graph.remove_edge(u, v)
                    self._executor.invalidate(u, v)
        for h in watches:
            h.count = before[h.name] + deltas[h.name]
            h.updates_seen += len(batch)
            h.seconds_delta += seconds[h.name]
        self._n_batches += 1
        self._n_updates += len(batch)
        return StreamReport(
            n_updates=len(batch),
            n_inserts=n_inserts,
            n_deletes=len(batch) - n_inserts,
            strategy=strategy,
            seconds=t_batch.elapsed,
            watches=tuple(
                WatchReport(
                    name=h.name,
                    count_before=before[h.name],
                    count=h.count,
                    delta=deltas[h.name],
                    seconds=seconds[h.name],
                )
                for h in watches
            ),
        )

    # ------------------------------------------------------------------
    def snapshot(self, name: str = "") -> Graph:
        """The bound graph's current immutable snapshot (memoised)."""
        return self.graph.snapshot(name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamSession({self.graph!r}, watches={len(self._watches)}, "
            f"batches={self._n_batches}, updates={self._n_updates})"
        )
