"""Named patterns, including the paper's evaluation set P1–P6.

Patterns pinned directly by the paper's text/pseudocode:

* **House** (Fig. 5a): rectangle A-B-D-E plus roof C adjacent to A and B —
  edges AB, AC, BC? No: from the pseudocode of Fig. 5(b): B∈N(A);
  C∈N(A); D∈N(B)∩N(C) via tmpBC; E∈N(A)∩N(B).  We use the standard
  house: 4-cycle (A,B,D,E) with roof C on top of edge A-B, i.e. edges
  AB, AC, BC, BD, AE, DE — 5 vertices, 6 edges, |Aut| = 2.
* **Cycle-6-Tri** (Fig. 6a): derived from the paper's pseudocode — edges
  AB, AC (chords), and D adj {A,B}, E adj {A,C}, F adj {B,C}; i.e. the
  6-cycle A-D-B-F-C-E-A plus chords AB and AC.  6 vertices, 8 edges.
* **Rectangle** (Fig. 4a): the 4-cycle, |Aut| = 8.

The evaluation patterns P1–P6 of Figure 7 are published only as drawings,
so we reconstruct them from the textual evidence (see DESIGN.md):
P1 = House and P2 = Pentagon are "also used in GraphZero" and "relatively
simple"; P3 appears in Figure 9 with a ~400-schedule landscape (6
vertices); §V-C says the top 4 vertices of P4 form a rectangle; P5 and P6
are "large and complex" (the preprocessing overhead of Table III grows to
seconds, implying 6–7 vertices with rich symmetry).
"""

from __future__ import annotations

from itertools import combinations

from repro.pattern.pattern import Pattern


# ---------------------------------------------------------------------------
# basic named shapes
# ---------------------------------------------------------------------------
def triangle() -> Pattern:
    return Pattern(3, [(0, 1), (0, 2), (1, 2)], name="triangle")


def rectangle() -> Pattern:
    """The 4-cycle of Figure 4(a): A=0, B=1, C=2, D=3."""
    return Pattern(4, [(0, 1), (1, 2), (2, 3), (3, 0)], name="rectangle")


def path(n: int) -> Pattern:
    if n < 2:
        raise ValueError("a path needs at least 2 vertices")
    return Pattern(n, [(i, i + 1) for i in range(n - 1)], name=f"path-{n}")


def cycle(n: int) -> Pattern:
    if n < 3:
        raise ValueError("a cycle needs at least 3 vertices")
    return Pattern(n, [(i, (i + 1) % n) for i in range(n)], name=f"cycle-{n}")


def star(n_leaves: int) -> Pattern:
    if n_leaves < 1:
        raise ValueError("a star needs at least one leaf")
    return Pattern(
        n_leaves + 1, [(0, i) for i in range(1, n_leaves + 1)], name=f"star-{n_leaves}"
    )


def clique(n: int) -> Pattern:
    if n < 2:
        raise ValueError("a clique needs at least 2 vertices")
    return Pattern(n, list(combinations(range(n), 2)), name=f"clique-{n}")


def pentagon() -> Pattern:
    p = cycle(5)
    return Pattern(5, p.edges, name="pentagon")


def house() -> Pattern:
    """Figure 5(a): rectangle (A,E,D,B) with roof C over edge A-B.

    Vertices: A=0, B=1, C=2, D=3, E=4.  Edges: A-B, A-C, B-C (roof
    triangle), B-D, A-E, D-E (body).  The candidate sets of the paper's
    pseudocode fall out of this labelling: D ∈ N(B)∩N(C)?  — the paper's
    Fig. 5(b) uses schedule A,B,C,D,E with D ∈ tmpBC = N(vB)∩N(vC)…

    We match Fig. 5(b) exactly: E ∈ N(A)∩N(B), D ∈ N(B)∩N(C); so edges
    are A-B, A-C, B-C? no — D adj B and C, E adj A and B, plus A-C and
    A-B.  Final edge set: {AB, AC, BD, CD, AE, BE}; the rectangle is
    A-C-D-B with roof on edge A-B.  |Aut| = 2 (swap C/E? no —
    reflection swapping (A,B)(C,E) keeps D fixed).
    """
    # A=0 B=1 C=2 D=3 E=4
    return Pattern(
        5,
        [(0, 1), (0, 2), (1, 3), (2, 3), (0, 4), (1, 4)],
        name="house",
    )


def hourglass() -> Pattern:
    """Two triangles sharing a single vertex (the GraphPi enum's Hourglass)."""
    return Pattern(5, [(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)], name="hourglass")


def cycle_6_tri() -> Pattern:
    """Figure 6(a): the Cycle-6-Tri pattern, reconstructed from Fig. 6(b).

    From the pseudocode: B ∈ N(A); C ∈ N(A); S1(D) = N(A)∩N(B);
    S2(E) = N(A)∩N(C); S3(F) = N(B)∩N(C).  Hence edges:
    A-B, A-C, D-A, D-B, E-A, E-C, F-B, F-C (8 edges, 6 vertices).
    D, E, F are pairwise non-adjacent → k = 3 (IEP removes 3 loops).
    """
    # A=0 B=1 C=2 D=3 E=4 F=5
    return Pattern(
        6,
        [(0, 1), (0, 2), (3, 0), (3, 1), (4, 0), (4, 2), (5, 1), (5, 2)],
        name="cycle-6-tri",
    )


def rectangle_house() -> Pattern:
    """P4 reconstruction: top 4 vertices form a rectangle (§V-C), with two
    extra vertices hanging below — a 6-vertex 'double-roof house'.

    Rectangle A-B-C-D; E adjacent to A and B; F adjacent to C and D.
    E and F are non-adjacent (and each non-adjacent to half the
    rectangle), giving k = 2 ... 3 and a rectangle subpattern whose count
    the performance model must predict (the P4 discussion in §V-C).
    """
    return Pattern(
        6,
        [(0, 1), (1, 2), (2, 3), (3, 0), (4, 0), (4, 1), (5, 2), (5, 3)],
        name="rectangle-house",
    )


def double_triangle_prism() -> Pattern:
    """P5 reconstruction: the 3-prism (two triangles joined by a matching)
    plus a chord — 6 vertices, 10 edges, rich symmetry. """
    return Pattern(
        6,
        [
            (0, 1), (1, 2), (0, 2),          # top triangle
            (3, 4), (4, 5), (3, 5),          # bottom triangle
            (0, 3), (1, 4), (2, 5),          # matching
            (0, 4),                          # chord breaking full symmetry
        ],
        name="prism-chord",
    )


def near_clique_7() -> Pattern:
    """P6 reconstruction: K7 minus a perfect-ish matching (3 edges) —
    7 vertices, 18 edges; large automorphism group, heavy preprocessing,
    exactly the regime where Table III reports seconds of overhead."""
    missing = {(0, 1), (2, 3), (4, 5)}
    edges = [e for e in combinations(range(7), 2) if e not in missing]
    return Pattern(7, edges, name="near-clique-7")


# ---------------------------------------------------------------------------
# the paper's evaluation set
# ---------------------------------------------------------------------------
def paper_patterns() -> dict[str, Pattern]:
    """P1–P6 used throughout Section V (see module docstring)."""
    return {
        "P1": _renamed(house(), "P1"),
        "P2": _renamed(pentagon(), "P2"),
        "P3": _renamed(cycle_6_tri(), "P3"),
        "P4": _renamed(rectangle_house(), "P4"),
        "P5": _renamed(double_triangle_prism(), "P5"),
        "P6": _renamed(near_clique_7(), "P6"),
    }


def _renamed(p: Pattern, name: str) -> Pattern:
    return Pattern(p.n_vertices, p.edges, name=name)


NAMED_PATTERNS = {
    "triangle": triangle,
    "rectangle": rectangle,
    "pentagon": pentagon,
    "house": house,
    "hourglass": hourglass,
    "cycle-6-tri": cycle_6_tri,
    "rectangle-house": rectangle_house,
    "prism-chord": double_triangle_prism,
    "near-clique-7": near_clique_7,
}


def get_pattern(name: str) -> Pattern:
    """Look up a pattern by name ('house', 'P3', 'clique-5', 'cycle-6'...)."""
    key = name.lower()
    if key in NAMED_PATTERNS:
        return NAMED_PATTERNS[key]()
    if key.upper().startswith("P") and key[1:].isdigit():
        papers = paper_patterns()
        up = key.upper()
        if up in papers:
            return papers[up]
    if key.startswith("clique-"):
        return clique(int(key.split("-", 1)[1]))
    if key.startswith("cycle-") and key[6:].isdigit():
        return cycle(int(key.split("-", 1)[1]))
    if key.startswith("path-"):
        return path(int(key.split("-", 1)[1]))
    if key.startswith("star-"):
        return star(int(key.split("-", 1)[1]))
    raise KeyError(f"unknown pattern {name!r}")
