"""Directed patterns and their automorphism groups.

Companion to :mod:`repro.graph.digraph`: the pattern side of the paper's
claimed directed extension (§II-A).  A directed pattern is a small arc
set on vertices 0..n-1; its automorphisms are the *direction-preserving*
subgroup of the undirected skeleton's automorphism group, which is what
Algorithm 1 needs to break directed symmetry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.pattern.automorphism import automorphisms as _skeleton_automorphisms
from repro.pattern.pattern import Pattern
from repro.pattern.permutation import Perm


@dataclass(frozen=True, init=False)
class DiPattern:
    """A directed, unlabeled pattern graph on vertices 0..n-1.

    Antiparallel arc pairs (u→v and v→u) are allowed and distinct;
    self-loops are not.  ``skeleton()`` gives the underlying undirected
    :class:`~repro.pattern.pattern.Pattern`, on which scheduling
    (connectivity, independent suffixes) is defined — a schedule only
    cares *that* two vertices interact, direction decides *which*
    adjacency (out/in) supplies the candidate set.
    """

    n_vertices: int
    _out_bits: tuple[int, ...]  # successor bitmask per vertex
    name: str

    def __init__(self, n_vertices: int, arcs: Iterable[tuple[int, int]], name: str = ""):
        if n_vertices <= 0:
            raise ValueError("a pattern needs at least one vertex")
        bits = [0] * n_vertices
        for u, v in arcs:
            if not (0 <= u < n_vertices and 0 <= v < n_vertices):
                raise ValueError(f"arc ({u},{v}) out of range for {n_vertices} vertices")
            if u == v:
                raise ValueError(f"self-loop ({u},{u}) not allowed in a pattern")
            bits[u] |= 1 << v
        object.__setattr__(self, "n_vertices", n_vertices)
        object.__setattr__(self, "_out_bits", tuple(bits))
        object.__setattr__(self, "name", name)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def arcs(self) -> list[tuple[int, int]]:
        out = []
        for u in range(self.n_vertices):
            mask = self._out_bits[u]
            v = 0
            while mask:
                if mask & 1:
                    out.append((u, v))
                mask >>= 1
                v += 1
        return out

    @property
    def n_arcs(self) -> int:
        return sum(bin(b).count("1") for b in self._out_bits)

    def has_arc(self, u: int, v: int) -> bool:
        return bool(self._out_bits[u] >> v & 1)

    def successors(self, v: int) -> list[int]:
        mask = self._out_bits[v]
        return [i for i in range(self.n_vertices) if mask >> i & 1]

    def predecessors(self, v: int) -> list[int]:
        return [u for u in range(self.n_vertices) if self._out_bits[u] >> v & 1]

    def out_degree(self, v: int) -> int:
        return bin(self._out_bits[v]).count("1")

    def in_degree(self, v: int) -> int:
        return len(self.predecessors(v))

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def skeleton(self) -> Pattern:
        """The underlying undirected pattern (antiparallel pairs merge)."""
        edges = {(min(u, v), max(u, v)) for u, v in self.arcs}
        return Pattern(self.n_vertices, sorted(edges), name=self.name)

    def is_connected(self) -> bool:
        """Weak connectivity (of the skeleton)."""
        return self.skeleton().is_connected()

    def relabel(self, perm: Sequence[int]) -> "DiPattern":
        """Return the pattern with vertex i renamed to perm[i]."""
        if sorted(perm) != list(range(self.n_vertices)):
            raise ValueError(f"{perm!r} is not a permutation of the pattern vertices")
        return DiPattern(
            self.n_vertices, [(perm[u], perm[v]) for u, v in self.arcs], name=self.name
        )

    def reverse(self) -> "DiPattern":
        """Flip every arc."""
        return DiPattern(
            self.n_vertices, [(v, u) for u, v in self.arcs], name=self.name
        )

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or f"{self.n_vertices}v{self.n_arcs}a"
        return f"DiPattern({label}, arcs={self.arcs})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, DiPattern):
            return NotImplemented
        return self._out_bits == other._out_bits

    def __hash__(self) -> int:
        return hash(("di", self._out_bits))


# ---------------------------------------------------------------------------
# automorphisms
# ---------------------------------------------------------------------------
def directed_automorphisms(pattern: DiPattern) -> list[Perm]:
    """All permutations p with (u → v) ∈ A ⟺ (p(u) → p(v)) ∈ A.

    Computed by filtering the skeleton's automorphism group: any
    direction-preserving bijection certainly preserves the skeleton, so
    the directed group is the subgroup fixing arc orientations.
    """
    out = []
    for perm in _skeleton_automorphisms(pattern.skeleton()):
        if all(pattern.has_arc(perm[u], perm[v]) for u, v in pattern.arcs):
            out.append(perm)
    return out


def directed_automorphism_count(pattern: DiPattern) -> int:
    return len(directed_automorphisms(pattern))


def is_directed_automorphism(pattern: DiPattern, perm: Sequence[int]) -> bool:
    if sorted(perm) != list(range(pattern.n_vertices)):
        return False
    arcs = pattern.arcs
    if len({perm[u] for u in range(pattern.n_vertices)}) != pattern.n_vertices:
        return False
    mapped = {(perm[u], perm[v]) for u, v in arcs}
    return mapped == set(arcs)


# ---------------------------------------------------------------------------
# a small catalog of directed patterns used in tests and examples
# ---------------------------------------------------------------------------
def directed_cycle(n: int) -> DiPattern:
    """The directed n-cycle 0 → 1 → … → n-1 → 0 (|Aut| = n rotations)."""
    if n < 2:
        raise ValueError("a directed cycle needs at least 2 vertices")
    return DiPattern(n, [(i, (i + 1) % n) for i in range(n)], name=f"dicycle-{n}")


def transitive_triangle() -> DiPattern:
    """The transitive tournament on 3 vertices (asymmetric, |Aut| = 1)."""
    return DiPattern(3, [(0, 1), (0, 2), (1, 2)], name="transitive-triangle")


def directed_path(n: int) -> DiPattern:
    """0 → 1 → … → n-1 (asymmetric for n ≥ 2)."""
    if n < 2:
        raise ValueError("a directed path needs at least 2 vertices")
    return DiPattern(n, [(i, i + 1) for i in range(n - 1)], name=f"dipath-{n}")


def out_star(n_leaves: int) -> DiPattern:
    """Hub 0 with arcs to ``n_leaves`` leaves (|Aut| = n_leaves!)."""
    if n_leaves < 1:
        raise ValueError("a star needs at least one leaf")
    return DiPattern(
        n_leaves + 1, [(0, i + 1) for i in range(n_leaves)], name=f"out-star-{n_leaves}"
    )


def feedforward_loop() -> DiPattern:
    """The feed-forward loop (the transitive triangle under its common
    systems-biology name): X → Y, X → Z, Y → Z."""
    p = transitive_triangle()
    return DiPattern(3, p.arcs, name="feedforward-loop")


def bi_fan() -> DiPattern:
    """The bi-fan motif: two sources 0,1 each pointing at two sinks 2,3."""
    return DiPattern(4, [(0, 2), (0, 3), (1, 2), (1, 3)], name="bi-fan")


def directed_clique(n: int) -> DiPattern:
    """The complete digraph (all antiparallel pairs): |Aut| = n!."""
    arcs = [(u, v) for u in range(n) for v in range(n) if u != v]
    return DiPattern(n, arcs, name=f"diclique-{n}")


#: directed pattern names resolvable by :func:`get_directed_pattern`
#: (the directed analogue of ``repro.pattern.catalog.NAMED_PATTERNS``).
NAMED_DIPATTERNS = {
    "feedforward-loop": feedforward_loop,
    "ffl": feedforward_loop,
    "bifan": bi_fan,
    "transitive-triangle": transitive_triangle,
}


def get_directed_pattern(name: str) -> DiPattern:
    """Resolve a directed pattern by name.

    Named forms come from :data:`NAMED_DIPATTERNS`; parametric forms are
    ``dcycle-N``, ``dpath-N``, ``outstar-N`` and ``dclique-N``.  The CLI
    (``repro count --mode directed``) and API users share this resolver.
    """
    import re

    if name in NAMED_DIPATTERNS:
        return NAMED_DIPATTERNS[name]()
    m = re.fullmatch(r"(dcycle|dpath|outstar|dclique)-(\d+)", name)
    if m:
        maker = {
            "dcycle": directed_cycle,
            "dpath": directed_path,
            "outstar": out_star,
            "dclique": directed_clique,
        }[m.group(1)]
        return maker(int(m.group(2)))
    choices = sorted(NAMED_DIPATTERNS) + ["dcycle-N", "dpath-N", "outstar-N",
                                          "dclique-N"]
    raise ValueError(f"unknown directed pattern {name!r}; choose from {choices}")
