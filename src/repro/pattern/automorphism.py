"""Automorphism-group enumeration for patterns.

An automorphism of a pattern is a permutation ``p`` of its vertices with
``(u, v) ∈ E ⇔ (p(u), p(v)) ∈ E``.  The set of all automorphisms forms a
permutation group (paper §IV-A); its size is the redundancy factor a
naive matcher pays (5 040 for the 7-clique).

Patterns have ≤ ~10 vertices, so a degree-pruned backtracking search is
instant; no need for nauty-style refinement.
"""

from __future__ import annotations

from typing import Sequence

from repro.pattern.pattern import Pattern
from repro.pattern.permutation import Perm, compose, identity, inverse


def automorphisms(pattern: Pattern) -> list[Perm]:
    """All automorphisms of the pattern, identity first, sorted.

    Backtracking assigns images vertex by vertex; a partial assignment is
    pruned as soon as an edge/non-edge mismatch with any previously
    assigned vertex appears.  Degree is used as a cheap invariant filter.
    """
    n = pattern.n_vertices
    degrees = pattern.degrees
    image = [-1] * n
    used = [False] * n
    found: list[Perm] = []

    def backtrack(v: int) -> None:
        if v == n:
            found.append(tuple(image))
            return
        for candidate in range(n):
            if used[candidate] or degrees[candidate] != degrees[v]:
                continue
            ok = True
            for prev in range(v):
                if pattern.has_edge(prev, v) != pattern.has_edge(image[prev], candidate):
                    ok = False
                    break
            if ok:
                image[v] = candidate
                used[candidate] = True
                backtrack(v + 1)
                used[candidate] = False
                image[v] = -1

    backtrack(0)
    found.sort()
    assert found and found[0] == identity(n), "identity must be an automorphism"
    return found


def automorphism_count(pattern: Pattern) -> int:
    """|Aut(P)| — the number of automorphisms of each embedding."""
    return len(automorphisms(pattern))


def is_automorphism(pattern: Pattern, perm: Sequence[int]) -> bool:
    """Check a single permutation against the automorphism definition."""
    if sorted(perm) != list(range(pattern.n_vertices)):
        return False
    # A bijection mapping every edge onto an edge maps E onto E (|E| finite),
    # so checking the forward direction suffices.
    return all(pattern.has_edge(perm[u], perm[v]) for u, v in pattern.edges)


def verify_group(perms: list[Perm]) -> bool:
    """Check the group axioms (closure + inverses) on a permutation list.

    Used in tests to confirm that what we enumerate really is the
    automorphism *group* the paper reasons about.
    """
    group = set(perms)
    if not group:
        return False
    n = len(next(iter(group)))
    if identity(n) not in group:
        return False
    for p in group:
        if inverse(p) not in group:
            return False
        for q in group:
            if compose(p, q) not in group:
                return False
    return True


def orbits(perms: list[Perm]) -> list[list[int]]:
    """Vertex orbits under the group: the equivalence classes of symmetry.

    The classic symmetry-breaking baseline (GraphZero-style) anchors its
    restrictions on orbit representatives, so this is shared substrate.
    """
    if not perms:
        return []
    n = len(perms[0])
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for p in perms:
        for v in range(n):
            a, b = find(v), find(p[v])
            if a != b:
                parent[b] = a
    groups: dict[int, list[int]] = {}
    for v in range(n):
        groups.setdefault(find(v), []).append(v)
    return sorted(groups.values())


def stabilizer(perms: list[Perm], vertex: int) -> list[Perm]:
    """The subgroup fixing ``vertex`` pointwise."""
    return [p for p in perms if p[vertex] == vertex]


def pointwise_stabilizer(perms: list[Perm], vertices: Sequence[int]) -> list[Perm]:
    """The subgroup fixing every vertex in ``vertices``."""
    out = perms
    for v in vertices:
        out = stabilizer(out, v)
    return out
