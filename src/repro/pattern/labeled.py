"""Labeled patterns: the paper's claimed extension, made concrete.

§II-A: *"all patterns and data graphs are assumed to be undirected and
unlabeled graphs, although all methods proposed in this paper can be
easily extended to directed and labeled graphs."*  This module carries
out the labeled half of that claim:

* a :class:`LabeledPattern` pairs a structural pattern with a vertex
  label per pattern vertex;
* **label-preserving automorphisms** — only symmetries mapping every
  vertex to an equally-labeled vertex create redundancy, so the
  restriction generator must run on this (smaller) subgroup;
* label-aware candidate filtering hooks for the engine.

Labels shrink the automorphism group (often to triviality, which makes
restrictions unnecessary) while adding a cheap per-candidate filter —
exactly the trade the paper alludes to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.pattern.automorphism import automorphisms
from repro.pattern.pattern import Pattern
from repro.pattern.permutation import Perm


@dataclass(frozen=True)
class LabeledPattern:
    """A pattern whose vertices carry (small-integer) labels."""

    pattern: Pattern
    labels: tuple[int, ...]

    def __post_init__(self):
        if len(self.labels) != self.pattern.n_vertices:
            raise ValueError(
                f"{len(self.labels)} labels for a "
                f"{self.pattern.n_vertices}-vertex pattern"
            )
        if any(l < 0 for l in self.labels):
            raise ValueError("labels must be non-negative integers")

    @property
    def n_vertices(self) -> int:
        return self.pattern.n_vertices

    @property
    def name(self) -> str:
        return self.pattern.name

    def label_of(self, v: int) -> int:
        return self.labels[v]

    def distinct_labels(self) -> set[int]:
        return set(self.labels)


def labeled_automorphisms(lp: LabeledPattern) -> list[Perm]:
    """The subgroup of structural automorphisms preserving labels.

    σ is a labeled automorphism iff it is a structural automorphism and
    ``labels[σ(v)] == labels[v]`` for every vertex.
    """
    return [
        sigma
        for sigma in automorphisms(lp.pattern)
        if all(lp.labels[sigma[v]] == lp.labels[v] for v in range(lp.n_vertices))
    ]


def labeled_automorphism_count(lp: LabeledPattern) -> int:
    return len(labeled_automorphisms(lp))


def is_labeled_automorphism(lp: LabeledPattern, perm: Sequence[int]) -> bool:
    from repro.pattern.automorphism import is_automorphism

    return is_automorphism(lp.pattern, perm) and all(
        lp.labels[perm[v]] == lp.labels[v] for v in range(lp.n_vertices)
    )
