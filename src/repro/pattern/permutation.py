"""Permutations and their cycle structure (the algebra behind §IV-A).

GraphPi's restriction generator works on the permutation group formed by
a pattern's automorphisms.  The key operation is extracting *2-cycles*
(transpositions) from a permutation's disjoint-cycle decomposition:
restrictions are applied on 2-cycles, and any k-cycle factors into
2-cycles, which is why they are "the most essential elements".

A permutation over n points is represented as a tuple ``p`` of length n
with ``p[i]`` = image of point ``i``.
"""

from __future__ import annotations

from itertools import permutations as _itertools_permutations
from typing import Iterable, Iterator, Sequence

Perm = tuple[int, ...]


def identity(n: int) -> Perm:
    """The identity permutation on n points."""
    return tuple(range(n))


def is_identity(perm: Sequence[int]) -> bool:
    return all(p == i for i, p in enumerate(perm))


def validate_perm(perm: Sequence[int]) -> Perm:
    """Check that ``perm`` is a bijection on {0..n-1} and return it as a tuple."""
    n = len(perm)
    seen = [False] * n
    for p in perm:
        if not isinstance(p, (int,)) or not 0 <= p < n or seen[p]:
            raise ValueError(f"not a permutation of 0..{n - 1}: {perm!r}")
        seen[p] = True
    return tuple(perm)


def compose(outer: Sequence[int], inner: Sequence[int]) -> Perm:
    """(outer ∘ inner)(x) = outer[inner[x]]."""
    if len(outer) != len(inner):
        raise ValueError("cannot compose permutations of different sizes")
    return tuple(outer[i] for i in inner)


def inverse(perm: Sequence[int]) -> Perm:
    inv = [0] * len(perm)
    for i, p in enumerate(perm):
        inv[p] = i
    return tuple(inv)


def apply_perm(perm: Sequence[int], items: Sequence) -> tuple:
    """Relabel: result[perm[i]] = items[i]."""
    out = [None] * len(items)
    for i, item in enumerate(items):
        out[perm[i]] = item
    return tuple(out)


def cycle_decomposition(perm: Sequence[int]) -> list[tuple[int, ...]]:
    """Disjoint-cycle decomposition, fixed points included as 1-cycles.

    Cycles are rotated to start at their minimum element and sorted by
    that element, giving a canonical form:

    >>> cycle_decomposition((0, 3, 2, 1))
    [(0,), (1, 3), (2,)]
    """
    n = len(perm)
    seen = [False] * n
    cycles: list[tuple[int, ...]] = []
    for start in range(n):
        if seen[start]:
            continue
        cycle = [start]
        seen[start] = True
        nxt = perm[start]
        while nxt != start:
            cycle.append(nxt)
            seen[nxt] = True
            nxt = perm[nxt]
        cycles.append(tuple(cycle))
    return cycles


def two_cycles(perm: Sequence[int]) -> list[tuple[int, int]]:
    """All transposition pairs {a, b} with perm[a] == b and perm[b] == a.

    This is the test on line 11 of the paper's Algorithm 1
    (``vertex == perm[perm[vertex]]`` with ``perm[vertex] != vertex``).
    Pairs are returned once, as (a, b) with a < b.
    """
    out = []
    for a, image in enumerate(perm):
        if image > a and perm[image] == a:
            out.append((a, image))
    return out


def transposition_product(perm: Sequence[int]) -> list[tuple[int, int]]:
    """Factor the permutation into 2-cycles (as the paper's example does).

    A k-cycle (a1, a2, ..., ak) factors as (a1,ak)(a1,ak-1)...(a1,a2).
    Fixed points contribute nothing.  Composing the returned
    transpositions right-to-left reproduces the permutation.
    """
    factors: list[tuple[int, int]] = []
    for cycle in cycle_decomposition(perm):
        if len(cycle) < 2:
            continue
        head = cycle[0]
        for other in reversed(cycle[1:]):
            factors.append((head, other))
    return factors


def perm_from_cycles(n: int, cycles: Iterable[Sequence[int]]) -> Perm:
    """Build a permutation from disjoint cycles (unlisted points fixed)."""
    out = list(range(n))
    touched = set()
    for cycle in cycles:
        for x in cycle:
            if x in touched:
                raise ValueError(f"cycles are not disjoint at point {x}")
            touched.add(x)
        for i, x in enumerate(cycle):
            out[x] = cycle[(i + 1) % len(cycle)]
    return tuple(out)


def perm_order(perm: Sequence[int]) -> int:
    """Order of the permutation = lcm of its cycle lengths."""
    from math import lcm

    return lcm(*(len(c) for c in cycle_decomposition(perm))) if perm else 1


def all_permutations(n: int) -> Iterator[Perm]:
    """All n! permutations of 0..n-1 (n is a pattern size: tiny)."""
    return _itertools_permutations(range(n))


def cycles_to_string(perm: Sequence[int]) -> str:
    """Render as a product of disjoint cycles, e.g. '(0)(1 3)(2)'."""
    return "".join(
        "(" + " ".join(str(x) for x in cycle) + ")" for cycle in cycle_decomposition(perm)
    )
