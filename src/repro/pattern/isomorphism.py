"""Pattern isomorphism and canonical forms (for the motif census).

Patterns are tiny, so a brute-force canonical form — the lexicographically
smallest upper-triangle adjacency bitstring over all vertex permutations —
is cheap and completely reliable.  ``connected_patterns(k)`` enumerates
all non-isomorphic connected k-vertex patterns, which is exactly the
pattern set of a k-motif census (4-motif: 6 patterns, 5-motif: 21).
"""

from __future__ import annotations

from itertools import combinations, permutations

from repro.pattern.pattern import Pattern


def upper_triangle_bits(pattern: Pattern) -> int:
    """Encode edges as a bitmask over pairs (i<j) in lexicographic order."""
    n = pattern.n_vertices
    bits = 0
    pos = 0
    for i in range(n):
        for j in range(i + 1, n):
            if pattern.has_edge(i, j):
                bits |= 1 << pos
            pos += 1
    return bits


def canonical_form(pattern: Pattern) -> tuple[int, int]:
    """(n_vertices, minimal adjacency bitmask over all relabellings)."""
    n = pattern.n_vertices
    best = None
    for perm in permutations(range(n)):
        relabelled = pattern.relabel(list(perm))
        bits = upper_triangle_bits(relabelled)
        if best is None or bits < best:
            best = bits
    return (n, best if best is not None else 0)


def are_isomorphic(a: Pattern, b: Pattern) -> bool:
    """Exact isomorphism test between two patterns."""
    if a.n_vertices != b.n_vertices or a.n_edges != b.n_edges:
        return False
    if sorted(a.degrees) != sorted(b.degrees):
        return False
    return canonical_form(a) == canonical_form(b)


def find_isomorphism(a: Pattern, b: Pattern) -> list[int] | None:
    """A vertex mapping a→b if one exists (backtracking), else None."""
    if a.n_vertices != b.n_vertices or a.n_edges != b.n_edges:
        return None
    n = a.n_vertices
    deg_a, deg_b = a.degrees, b.degrees
    image = [-1] * n
    used = [False] * n

    def backtrack(v: int) -> bool:
        if v == n:
            return True
        for cand in range(n):
            if used[cand] or deg_a[v] != deg_b[cand]:
                continue
            if all(a.has_edge(p, v) == b.has_edge(image[p], cand) for p in range(v)):
                image[v] = cand
                used[cand] = True
                if backtrack(v + 1):
                    return True
                used[cand] = False
                image[v] = -1
        return False

    return image if backtrack(0) else None


def connected_patterns(k: int) -> list[Pattern]:
    """All non-isomorphic *connected* patterns on k vertices.

    Enumerates every edge subset of K_k, keeps connected ones, dedups by
    canonical form.  Exponential in k(k-1)/2 — fine for k ≤ 5, the motif
    sizes the paper's motivation (4-motif on MiCo) talks about.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if k > 6:
        raise ValueError("connected_patterns is intended for k <= 6")
    pairs = list(combinations(range(k), 2))
    seen: set[tuple[int, int]] = set()
    out: list[Pattern] = []
    for mask in range(1 << len(pairs)):
        edges = [pairs[i] for i in range(len(pairs)) if mask >> i & 1]
        if len(edges) < k - 1:
            continue  # too few edges to connect k vertices
        p = Pattern(k, edges, name=f"motif-{k}-{mask}")
        if not p.is_connected():
            continue
        canon = canonical_form(p)
        if canon in seen:
            continue
        seen.add(canon)
        out.append(p)
    out.sort(key=lambda p: (p.n_edges, canonical_form(p)[1]))
    return [
        Pattern(p.n_vertices, p.edges, name=f"motif{k}.{idx}") for idx, p in enumerate(out)
    ]
