"""The pattern type: a small undirected graph to be matched.

Patterns are tiny (the paper evaluates 5–7 vertices; automorphism-group
and schedule enumeration are factorial in this size), so the
representation favours clarity over scale: a frozen adjacency-matrix
bitset with convenience methods used across the scheduler, the
restriction generator and the performance model.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Sequence

import numpy as np


@dataclass(frozen=True, init=False)
class Pattern:
    """An undirected, unlabeled pattern graph on vertices 0..n-1."""

    n_vertices: int
    _adj_bits: tuple[int, ...]  # adjacency as per-vertex bitmasks
    name: str

    def __init__(self, n_vertices: int, edges: Iterable[tuple[int, int]], name: str = ""):
        if n_vertices <= 0:
            raise ValueError("a pattern needs at least one vertex")
        bits = [0] * n_vertices
        for u, v in edges:
            if not (0 <= u < n_vertices and 0 <= v < n_vertices):
                raise ValueError(f"edge ({u},{v}) out of range for {n_vertices} vertices")
            if u == v:
                raise ValueError(f"self-loop ({u},{u}) not allowed in a pattern")
            bits[u] |= 1 << v
            bits[v] |= 1 << u
        object.__setattr__(self, "n_vertices", n_vertices)
        object.__setattr__(self, "_adj_bits", tuple(bits))
        object.__setattr__(self, "name", name)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_adjacency_string(cls, n_vertices: int, bits: str, name: str = "") -> "Pattern":
        """GraphPi's flat adjacency-string format: row-major 0/1 chars.

        The GraphPi artifact describes patterns as ``(size, "0110...")``
        with ``bits[i*n + j] == '1'`` iff edge (i, j) exists.
        """
        expected = n_vertices * n_vertices
        if len(bits) != expected:
            raise ValueError(f"adjacency string must have {expected} chars, got {len(bits)}")
        edges = []
        for i in range(n_vertices):
            for j in range(i + 1, n_vertices):
                a, b = bits[i * n_vertices + j], bits[j * n_vertices + i]
                if a != b:
                    raise ValueError(f"adjacency string not symmetric at ({i},{j})")
                if a == "1":
                    edges.append((i, j))
                elif a != "0":
                    raise ValueError(f"invalid character {a!r} in adjacency string")
        return cls(n_vertices, edges, name=name)

    @classmethod
    def from_adjacency_matrix(cls, matrix: np.ndarray, name: str = "") -> "Pattern":
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("adjacency matrix must be square")
        if not np.array_equal(matrix, matrix.T):
            raise ValueError("adjacency matrix must be symmetric")
        src, dst = np.nonzero(np.triu(matrix, k=1))
        return cls(matrix.shape[0], list(zip(src.tolist(), dst.tolist())), name=name)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def edges(self) -> list[tuple[int, int]]:
        out = []
        for u in range(self.n_vertices):
            mask = self._adj_bits[u] >> (u + 1)
            v = u + 1
            while mask:
                if mask & 1:
                    out.append((u, v))
                mask >>= 1
                v += 1
        return out

    @property
    def n_edges(self) -> int:
        return sum(bin(b).count("1") for b in self._adj_bits) // 2

    def has_edge(self, u: int, v: int) -> bool:
        return bool(self._adj_bits[u] >> v & 1)

    def neighbors(self, v: int) -> list[int]:
        mask = self._adj_bits[v]
        return [i for i in range(self.n_vertices) if mask >> i & 1]

    def degree(self, v: int) -> int:
        return bin(self._adj_bits[v]).count("1")

    @property
    def degrees(self) -> list[int]:
        return [self.degree(v) for v in range(self.n_vertices)]

    def adjacency_matrix(self) -> np.ndarray:
        mat = np.zeros((self.n_vertices, self.n_vertices), dtype=np.int8)
        for u, v in self.edges:
            mat[u, v] = mat[v, u] = 1
        return mat

    # ------------------------------------------------------------------
    # structure queries used by the scheduler
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """Patterns must be connected for nested-loop matching."""
        if self.n_vertices == 1:
            return True
        seen = 1  # bitmask, start from vertex 0
        frontier = [0]
        while frontier:
            v = frontier.pop()
            mask = self._adj_bits[v] & ~seen
            while mask:
                low = mask & -mask
                u = low.bit_length() - 1
                seen |= low
                mask ^= low
                frontier.append(u)
        return seen == (1 << self.n_vertices) - 1

    def is_independent_set(self, vertices: Sequence[int]) -> bool:
        return all(
            not self.has_edge(u, v) for u, v in combinations(vertices, 2)
        )

    def max_independent_set_size(self) -> int:
        """k in §IV-B phase 2: the largest pairwise-nonadjacent vertex set."""
        best = 1
        for size in range(self.n_vertices, 1, -1):
            for combo in combinations(range(self.n_vertices), size):
                if self.is_independent_set(combo):
                    return size
        return best

    def independent_sets_of_size(self, k: int) -> list[tuple[int, ...]]:
        return [c for c in combinations(range(self.n_vertices), k) if self.is_independent_set(c)]

    def relabel(self, perm: Sequence[int]) -> "Pattern":
        """Return the pattern with vertex i renamed to perm[i]."""
        if sorted(perm) != list(range(self.n_vertices)):
            raise ValueError(f"{perm!r} is not a permutation of the pattern vertices")
        edges = [(perm[u], perm[v]) for u, v in self.edges]
        return Pattern(self.n_vertices, edges, name=self.name)

    def to_graph(self):
        """View this pattern as a data graph (used by the validator)."""
        from repro.graph.builder import graph_from_edges
        from repro.graph.generators import empty_graph

        if self.n_edges == 0:
            return empty_graph(self.n_vertices, name=self.name)
        g = graph_from_edges(self.edges, name=self.name)
        if g.n_vertices < self.n_vertices:  # trailing isolated vertices
            from repro.graph.generators import _pad_isolated

            g = _pad_isolated(g, self.n_vertices)
        return g

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or f"{self.n_vertices}v{self.n_edges}e"
        return f"Pattern({label}, edges={self.edges})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, Pattern):
            return NotImplemented
        return self._adj_bits == other._adj_bits

    def __hash__(self) -> int:
        return hash(self._adj_bits)
