"""repro — a pure-Python reproduction of GraphPi (SC 2020).

GraphPi: High Performance Graph Pattern Matching through Effective
Redundancy Elimination (Shi, Zhai, Xu, Zhai — Tsinghua University).

Top-level convenience re-exports cover the quickstart path: load a
graph, pick a pattern, count/match.  See DESIGN.md for the full system
inventory and EXPERIMENTS.md for the paper-vs-measured record.
"""

from repro.core.api import PatternMatcher, count_pattern, match_pattern, match_query
from repro.core.query import MatchQuery, MatchResult
from repro.core.session import MatchSession, get_session
from repro.core.backend import (
    BackendCapabilities,
    ExecutionBackend,
    MatchContext,
    available_backends,
    backend_names,
    capabilities_of,
    get_backend,
    register_backend,
)
from repro.core.autotune import (
    AutoBackend,
    AutotuneReport,
    CalibrationProfile,
    CalibrationWorkload,
    ProfileChoice,
    ProfileWarning,
    load_profile,
    run_calibration,
    set_active_profile,
)
from repro.core.directed import DirectedMatcher, count_directed, match_directed
from repro.core.reduction import (
    ReductionReport,
    reduce_directed_batch,
    skeleton_key,
)
from repro.core.induced import induced_count
from repro.graph.csr import Graph
from repro.graph.builder import graph_from_edges
from repro.graph.datasets import load_dataset
from repro.graph.digraph import DiGraph, digraph_from_edges
from repro.graph.stats import GraphStats
from repro.pattern.catalog import get_pattern, paper_patterns
from repro.pattern.directed import DiPattern
from repro.pattern.pattern import Pattern
from repro.runtime.distributed import (
    DistributedBackend,
    DistributedReport,
    distributed_count_ctx,
)
from repro.graph.dynamic import DynamicGraph
from repro.serving import (
    JobHandle,
    MatchRequest,
    MatchService,
    ReplicaRegistry,
    ServiceOverloaded,
)
from repro.streaming import StreamReport, StreamSession, WatchHandle
from repro import obs

__version__ = "1.0.0"

__all__ = [
    "PatternMatcher",
    "count_pattern",
    "match_pattern",
    "match_query",
    "MatchQuery",
    "MatchResult",
    "MatchSession",
    "get_session",
    "BackendCapabilities",
    "ExecutionBackend",
    "MatchContext",
    "available_backends",
    "backend_names",
    "capabilities_of",
    "get_backend",
    "register_backend",
    "AutoBackend",
    "AutotuneReport",
    "CalibrationProfile",
    "CalibrationWorkload",
    "ProfileChoice",
    "ProfileWarning",
    "load_profile",
    "run_calibration",
    "set_active_profile",
    "DirectedMatcher",
    "ReductionReport",
    "count_directed",
    "match_directed",
    "reduce_directed_batch",
    "skeleton_key",
    "induced_count",
    "Graph",
    "graph_from_edges",
    "load_dataset",
    "DiGraph",
    "digraph_from_edges",
    "GraphStats",
    "get_pattern",
    "paper_patterns",
    "Pattern",
    "DiPattern",
    "DistributedBackend",
    "DistributedReport",
    "distributed_count_ctx",
    "DynamicGraph",
    "JobHandle",
    "MatchRequest",
    "MatchService",
    "ReplicaRegistry",
    "ServiceOverloaded",
    "StreamReport",
    "StreamSession",
    "WatchHandle",
    "obs",
    "__version__",
]
