"""Observability: zero-dependency tracing and metrics for every layer.

Two substrates, both stdlib-only so any module in the repository can
instrument itself without import cycles or optional dependencies:

* :mod:`repro.obs.trace` — hierarchical spans with monotonic timings,
  collected per thread into an exportable :class:`~repro.obs.trace.Trace`
  tree.  Disabled (the default) a span costs one branch; enabled, the
  session layer attaches the tree to ``MatchResult.trace`` and the CLI
  renders it (``repro count --explain``) or exports Chrome
  ``trace_event`` JSON (``--trace-out``) loadable in Perfetto.
* :mod:`repro.obs.metrics` — a process-global registry of named
  counters, gauges and histograms (plan-cache and memo hit rates,
  frontier rows, intersection kernels, queue depth, job latency) with
  snapshot/delta/reset and Prometheus-style text exposition
  (``repro metrics``, ``MatchService.export_metrics()``).

See ``docs/observability.md`` for the span taxonomy and metric catalog.
"""

from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.trace import (
    Span,
    Trace,
    annotate,
    collect,
    disable,
    enable,
    enabled,
    record_span,
    span,
)

__all__ = [
    "REGISTRY",
    "MetricsRegistry",
    "Span",
    "Trace",
    "annotate",
    "collect",
    "disable",
    "enable",
    "enabled",
    "record_span",
    "span",
]
