"""Hierarchical tracing: spans, per-thread collection, Chrome export.

The design constraint is the hot path *without* tracing: every
instrumented site calls :func:`span`, and when tracing is disabled that
call is one module-global branch returning a shared no-op — no object
allocation, no clock read, no lock.  GraphPi's claim that schedule and
restriction choice dominate performance is only checkable if measuring
a query does not itself distort it.

Enabled, spans form a tree per thread: :func:`span` pushes onto a
thread-local stack on entry and, on exit, attaches itself to the new
stack top (its parent).  A root with no parent is delivered to the
:class:`Trace` being collected on that thread (:func:`collect`), or
discarded when nothing collects — a worker thread tracing into the void
costs allocations but never leaks.

Cross-thread trees: a thread can adopt a foreign span as its local root
with :func:`under` (the service's worker loop does not need it — each
job runs wholly inside one worker thread — but fan-out executors can
nest their workers' spans under the coordinator's).  Completed
intervals known only by their endpoints (queue wait, for example) are
recorded with :func:`record_span`.

Sampling: :func:`enable` takes ``every=N`` — a deterministic 1-in-N
root sampler (no randomness, so traces are reproducible), applied at
:func:`collect` time.  An unsampled collection behaves exactly like
disabled tracing for its dynamic extent minus the enabled branch.

Export: :meth:`Trace.render` prints the tree with total/self times (the
``repro count --explain`` surface); :meth:`Trace.to_chrome` emits the
Chrome ``trace_event`` JSON object Perfetto and ``chrome://tracing``
load directly.
"""

from __future__ import annotations

import json
import os
import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Iterator

__all__ = [
    "Span",
    "Trace",
    "annotate",
    "collect",
    "current",
    "disable",
    "enable",
    "enabled",
    "record_span",
    "span",
    "under",
]

_local = threading.local()

#: module-global switch — the one branch disabled tracing costs.
_enabled = False


def _stack() -> list:
    try:
        return _local.stack
    except AttributeError:
        stack = _local.stack = []
        return stack


class Span:
    """One timed, attributed node in a trace tree (a context manager).

    Mutate attributes inside the block with :meth:`set` (assign) and
    :meth:`add` (accumulate) — both also exist on the disabled no-op,
    so instrumented code never branches on tracing itself.
    """

    __slots__ = ("name", "attrs", "children", "t0", "t1", "tid", "_sink")

    def __init__(self, name: str, attrs: dict | None = None, sink: "Trace | None" = None):
        self.name = name
        self.attrs = attrs if attrs is not None else {}
        self.children: list[Span] = []
        self.t0 = 0.0
        self.t1 = 0.0
        self.tid = 0
        self._sink = sink

    # -- the context-manager protocol ----------------------------------
    def __enter__(self) -> "Span":
        self.tid = threading.get_ident()
        _stack().append(self)
        self.t0 = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.t1 = perf_counter()
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        if stack:
            # list.append is atomic under the GIL, so adopted parents
            # (see ``under``) collect children from several threads
            # without a lock.
            stack[-1].children.append(self)
        if self._sink is not None:
            self._sink._deliver(self)
        return False

    # -- attributes ----------------------------------------------------
    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def add(self, key: str, n: "int | float" = 1) -> "Span":
        self.attrs[key] = self.attrs.get(key, 0) + n
        return self

    # -- derived views -------------------------------------------------
    @property
    def seconds(self) -> float:
        """Total wall time of the span (0.0 while still open)."""
        return max(self.t1 - self.t0, 0.0)

    @property
    def self_seconds(self) -> float:
        """Wall time not covered by child spans (clamped at zero)."""
        return max(self.seconds - sum(c.seconds for c in self.children), 0.0)

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "list[Span]":
        """Every descendant (including self) named ``name``."""
        return [s for s in self.walk() if s.name == name]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seconds": self.seconds,
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, {self.seconds * 1e3:.2f}ms, "
            f"{len(self.children)} children)"
        )


class _NoopSpan:
    """The shared disabled span: every method is a no-op returning self."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self

    def add(self, key: str, n: "int | float" = 1) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


def span(name: str, **attrs) -> "Span | _NoopSpan":
    """Open a span under the current thread's innermost span.

    The instrumentation entry point::

        with span("execute", backend=name) as sp:
            ...
            sp.set(rows=len(front))

    Disabled tracing returns the shared no-op after one branch.
    """
    if not _enabled:
        return NOOP_SPAN
    return Span(name, attrs)


def record_span(
    name: str, t0: float, t1: float, **attrs
) -> "Span | _NoopSpan":
    """Attach an already-completed interval as a child of the current span.

    For durations known only by their ``perf_counter`` endpoints — a
    job's queue wait, a deadline scheduler's idle gap — where no code
    block exists to wrap.
    """
    if not _enabled:
        return NOOP_SPAN
    sp = Span(name, attrs)
    sp.t0, sp.t1 = t0, t1
    sp.tid = threading.get_ident()
    stack = _stack()
    if stack:
        stack[-1].children.append(sp)
    return sp


def current() -> "Span | None":
    """The innermost open span on this thread, or ``None``."""
    stack = _stack()
    return stack[-1] if stack else None


def annotate(**attrs) -> None:
    """Merge attributes into the innermost open span (no-op when disabled).

    Lets deep helpers enrich the span their caller opened without
    threading span objects through every signature.
    """
    if not _enabled:
        return
    stack = _stack()
    if stack:
        stack[-1].attrs.update(attrs)


@contextmanager
def under(parent: "Span"):
    """Adopt ``parent`` as this thread's local root for the block.

    New spans opened inside nest under ``parent`` even though it was
    created on another thread (appends are GIL-atomic).  The adopted
    span must outlive the block.
    """
    stack = _stack()
    stack.append(parent)
    try:
        yield parent
    finally:
        if stack and stack[-1] is parent:
            stack.pop()


# ---------------------------------------------------------------------------
# the sampler and the global switch
# ---------------------------------------------------------------------------
class _Sampler:
    """Deterministic 1-in-N sampling of trace collections."""

    __slots__ = ("every", "_tick", "_lock")

    def __init__(self, every: int = 1):
        self.every = max(int(every), 1)
        self._tick = 0
        self._lock = threading.Lock()

    def decide(self) -> bool:
        if self.every <= 1:
            return True
        with self._lock:
            self._tick += 1
            # admit the Nth collection, not the first: a huge period
            # behaves like disabled tracing from the first call (the
            # overhead benchmark's "sampled-off" configuration).
            if self._tick >= self.every:
                self._tick = 0
                return True
            return False


_sampler = _Sampler()


def enable(*, every: int = 1) -> None:
    """Turn tracing on, collecting one trace in ``every`` (default all)."""
    global _enabled, _sampler
    _sampler = _Sampler(every)
    _enabled = True


def disable() -> None:
    """Turn tracing off (instrumented sites fall back to the one-branch no-op)."""
    global _enabled
    _enabled = False


def enabled() -> bool:
    return _enabled


# ---------------------------------------------------------------------------
# collection and export
# ---------------------------------------------------------------------------
class Trace:
    """One collected span tree, ready to inspect, render or export."""

    __slots__ = ("name", "root")

    def __init__(self, name: str):
        self.name = name
        self.root: Span | None = None

    def _deliver(self, root: Span) -> None:
        self.root = root

    # -- inspection ----------------------------------------------------
    @property
    def seconds(self) -> float:
        return self.root.seconds if self.root is not None else 0.0

    def spans(self) -> Iterator[Span]:
        if self.root is not None:
            yield from self.root.walk()

    def find(self, name: str) -> list[Span]:
        return [s for s in self.spans() if s.name == name]

    def depth(self) -> int:
        """Nesting levels in the tree (0 for an empty trace)."""

        def _depth(sp: Span) -> int:
            return 1 + max((_depth(c) for c in sp.children), default=0)

        return _depth(self.root) if self.root is not None else 0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "root": self.root.to_dict() if self.root is not None else None,
        }

    # -- export --------------------------------------------------------
    def to_chrome(self) -> dict:
        """The Chrome ``trace_event`` JSON object (Perfetto-loadable).

        Complete events (``"ph": "X"``) with microsecond timestamps
        relative to the root's start; span attributes ride in ``args``.
        """
        events: list[dict] = []
        if self.root is None:
            return {"traceEvents": events, "displayTimeUnit": "ms"}
        base = self.root.t0
        pid = os.getpid()
        tid_alias: dict[int, int] = {}
        for sp in self.root.walk():
            tid = tid_alias.setdefault(sp.tid, len(tid_alias))
            events.append(
                {
                    "name": sp.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": (sp.t0 - base) * 1e6,
                    "dur": sp.seconds * 1e6,
                    "pid": pid,
                    "tid": tid,
                    "args": {k: _jsonable(v) for k, v in sp.attrs.items()},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def to_chrome_json(self) -> str:
        return json.dumps(self.to_chrome())

    def render(self, *, min_seconds: float = 0.0) -> str:
        """The span tree as text: one line per span, total and self times.

        ``min_seconds`` hides spans cheaper than the threshold (their
        time still shows up in the parent's total) — per-depth spans on
        a large sweep can number in the hundreds.
        """
        if self.root is None:
            return f"trace {self.name!r}: empty"
        lines: list[str] = []

        def visit(sp: Span, prefix: str, is_last: bool, is_root: bool) -> None:
            if is_root:
                lead, child_prefix = "", ""
            else:
                lead = prefix + ("└─ " if is_last else "├─ ")
                child_prefix = prefix + ("   " if is_last else "│  ")
            attrs = " ".join(
                f"{k}={_short(v)}" for k, v in sp.attrs.items()
            )
            label = sp.name + (f" [{attrs}]" if attrs else "")
            lines.append(
                f"{lead}{label}  total {sp.seconds * 1e3:.2f}ms "
                f"self {sp.self_seconds * 1e3:.2f}ms"
            )
            kept = [c for c in sp.children if c.seconds >= min_seconds]
            hidden = len(sp.children) - len(kept)
            for i, child in enumerate(kept):
                visit(child, child_prefix, i == len(kept) - 1 and hidden == 0, False)
            if hidden:
                lines.append(
                    f"{child_prefix}└─ ... {hidden} spans under "
                    f"{min_seconds * 1e3:.2f}ms hidden"
                )

        visit(self.root, "", True, True)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        n = sum(1 for _ in self.spans())
        return f"Trace({self.name!r}, {n} spans, {self.seconds * 1e3:.2f}ms)"


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _short(value: Any) -> str:
    text = str(value)
    return text if len(text) <= 40 else text[:37] + "..."


@contextmanager
def collect(name: str, **attrs):
    """Collect a :class:`Trace` over the block (``None`` when disabled).

    The root span opened here also nests under any span already open on
    this thread, so an outer collection (a service job trace) sees the
    inner one (a session count trace) as a subtree while both still get
    their own :class:`Trace` objects.
    """
    if not _enabled or not _sampler.decide():
        yield None
        return
    trace = Trace(name)
    root = Span(name, attrs, sink=trace)
    with root:
        yield trace
