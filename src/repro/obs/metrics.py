"""The metrics registry: named counters, gauges and histograms.

One process-global :data:`REGISTRY` holds every instrument; every
instrument the repository emits is *declared in this module* (the
bottom section) so the registry doubles as the authoritative metric
catalog — ``tools/gen_metric_catalog.py`` renders the documentation
table straight from :meth:`MetricsRegistry.describe`, and the CI
freshness gate keeps ``docs/observability.md`` pinned to it.

Instruments are cheap and thread-safe (one small lock each; the hot
emitters — frontier sweeps, session counts — touch them a handful of
times per query, not per embedding).  Reading happens through
:meth:`MetricsRegistry.snapshot` (a flat ``sample name -> value`` dict
in Prometheus sample naming), :meth:`MetricsRegistry.delta` (the
difference against an earlier snapshot — what a benchmark or a test
asserts on), and :meth:`MetricsRegistry.render_prometheus` (the text
exposition format ``repro metrics`` and
``MatchService.export_metrics()`` serve).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Iterable, NamedTuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSpec",
    "MetricsRegistry",
    "REGISTRY",
]

#: histogram bucket upper bounds for wall-clock seconds (exponential,
#: 100 µs .. 100 s — matching jobs that take less than 100 µs are memo
#: hits, ones over 100 s belong in the distributed simulator).
SECONDS_BUCKETS = (
    1e-4, 3.16e-4, 1e-3, 3.16e-3, 1e-2, 3.16e-2, 0.1, 0.316, 1.0, 3.16, 10.0, 31.6, 100.0,
)


class MetricSpec(NamedTuple):
    """One catalog row: what an instrument is, for the generated docs."""

    name: str
    kind: str
    labels: tuple[str, ...]
    help: str


def _label_key(label_names: tuple[str, ...], values: dict) -> tuple:
    if set(values) != set(label_names):
        raise ValueError(
            f"expected labels {label_names}, got {tuple(sorted(values))}"
        )
    return tuple(str(values[name]) for name in label_names)


def _sample_name(name: str, label_names: tuple[str, ...], key: tuple) -> str:
    if not label_names:
        return name
    inner = ",".join(f'{n}="{v}"' for n, v in zip(label_names, key))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count, optionally labeled."""

    kind = "counter"
    __slots__ = ("name", "help", "label_names", "_lock", "_value", "_children")

    def __init__(self, name: str, help: str, label_names: tuple[str, ...] = ()):
        self.name = name
        self.help = help
        self.label_names = label_names
        self._lock = threading.Lock()
        self._value = 0.0
        self._children: dict[tuple, float] = {}

    def inc(self, n: "int | float" = 1) -> None:
        if self.label_names:
            raise ValueError(f"{self.name} is labeled; use .labels(...).inc()")
        with self._lock:
            self._value += n

    def labels(self, **values) -> "_BoundCounter":
        key = _label_key(self.label_names, values)
        return _BoundCounter(self, key)

    def _inc_child(self, key: tuple, n: "int | float") -> None:
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + n

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def samples(self) -> Iterable[tuple[str, float]]:
        with self._lock:
            if self.label_names:
                for key in sorted(self._children):
                    yield (
                        _sample_name(self.name, self.label_names, key),
                        self._children[key],
                    )
            else:
                yield self.name, self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0
            self._children.clear()


class _BoundCounter:
    """One label combination of a :class:`Counter` (``labels()`` result)."""

    __slots__ = ("_parent", "_key")

    def __init__(self, parent: Counter, key: tuple):
        self._parent = parent
        self._key = key

    def inc(self, n: "int | float" = 1) -> None:
        self._parent._inc_child(self._key, n)


class Gauge:
    """A value that goes up and down (queue depth, live workers)."""

    kind = "gauge"
    __slots__ = ("name", "help", "label_names", "_lock", "_value")

    def __init__(self, name: str, help: str, label_names: tuple[str, ...] = ()):
        if label_names:
            raise ValueError("labeled gauges are not needed yet")
        self.name = name
        self.help = help
        self.label_names = ()
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: "int | float") -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, n: "int | float" = 1) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: "int | float" = 1) -> None:
        with self._lock:
            self._value -= n

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def samples(self) -> Iterable[tuple[str, float]]:
        yield self.name, self.value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics: ``le`` bounds)."""

    kind = "histogram"
    __slots__ = ("name", "help", "label_names", "bounds", "_lock", "_counts",
                 "_sum", "_count")

    def __init__(
        self,
        name: str,
        help: str,
        label_names: tuple[str, ...] = (),
        bounds: tuple[float, ...] = SECONDS_BUCKETS,
    ):
        if label_names:
            raise ValueError("labeled histograms are not needed yet")
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be sorted ascending")
        self.name = name
        self.help = help
        self.label_names = ()
        self.bounds = tuple(float(b) for b in bounds)
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.bounds) + 1)  # +1: the +Inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: "int | float") -> None:
        i = 0
        for i, bound in enumerate(self.bounds):  # noqa: B007 - small, linear
            if value <= bound:
                break
        else:
            i = len(self.bounds)
        with self._lock:
            self._counts[i] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def samples(self) -> Iterable[tuple[str, float]]:
        with self._lock:
            counts = list(self._counts)
            total, acc = self._count, 0
            s = self._sum
        for bound, n in zip(self.bounds, counts):
            acc += n
            yield f'{self.name}_bucket{{le="{bound:g}"}}', float(acc)
        yield f'{self.name}_bucket{{le="+Inf"}}', float(total)
        yield f"{self.name}_sum", s
        yield f"{self.name}_count", float(total)

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._sum = 0.0
            self._count = 0


class MetricsRegistry:
    """Name → instrument, with snapshot/delta/reset and text exposition."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: "OrderedDict[str, Counter | Gauge | Histogram]" = OrderedDict()

    # -- registration --------------------------------------------------
    def _register(self, metric):
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                raise ValueError(f"metric {metric.name!r} already registered")
            self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help: str, labels: tuple[str, ...] = ()) -> Counter:
        return self._register(Counter(name, help, tuple(labels)))

    def gauge(self, name: str, help: str) -> Gauge:
        return self._register(Gauge(name, help))

    def histogram(
        self, name: str, help: str, *, bounds: tuple[float, ...] = SECONDS_BUCKETS
    ) -> Histogram:
        return self._register(Histogram(name, help, bounds=bounds))

    def get(self, name: str):
        with self._lock:
            return self._metrics[name]

    def names(self) -> list[str]:
        with self._lock:
            return list(self._metrics)

    # -- reading -------------------------------------------------------
    def snapshot(self) -> dict[str, float]:
        """Flat ``sample name -> value`` across every instrument."""
        with self._lock:
            metrics = list(self._metrics.values())
        out: dict[str, float] = {}
        for metric in metrics:
            out.update(metric.samples())
        return out

    def delta(self, previous: dict[str, float]) -> dict[str, float]:
        """Current snapshot minus ``previous`` (absent keys count as 0).

        Samples whose value did not change are omitted, so a test can
        assert exactly which instruments an operation touched.
        """
        now = self.snapshot()
        out: dict[str, float] = {}
        for key in now.keys() | previous.keys():
            diff = now.get(key, 0.0) - previous.get(key, 0.0)
            if diff:
                out[key] = diff
        return out

    def reset(self) -> None:
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset()

    def describe(self) -> list[MetricSpec]:
        """The catalog: one spec per registered instrument, in order."""
        with self._lock:
            return [
                MetricSpec(m.name, m.kind, tuple(m.label_names), m.help)
                for m in self._metrics.values()
            ]

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        with self._lock:
            metrics = list(self._metrics.values())
        lines: list[str] = []
        for metric in metrics:
            lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for sample, value in metric.samples():
                lines.append(f"{sample} {value:g}")
        return "\n".join(lines) + "\n"


#: the process-global registry every layer emits into.
REGISTRY = MetricsRegistry()


# ---------------------------------------------------------------------------
# the metric catalog — every instrument the repository emits, in one place
# ---------------------------------------------------------------------------
PLAN_CACHE_HITS = REGISTRY.counter(
    "repro_plan_cache_hits_total",
    "MatchSession plan-cache lookups served by a cached plan.",
)
PLAN_CACHE_MISSES = REGISTRY.counter(
    "repro_plan_cache_misses_total",
    "MatchSession plan-cache lookups that ran the full planning pipeline.",
)
KERNELS_COMPILED = REGISTRY.counter(
    "repro_kernels_compiled_total",
    "Specialised kernels generated at execution time (_ensure_kernel path).",
)
BACKEND_COUNTS = REGISTRY.counter(
    "repro_backend_counts_total",
    "Session count executions, by the backend that ran them.",
    labels=("backend",),
)
FRONTIER_ROWS = REGISTRY.counter(
    "repro_frontier_rows_total",
    "Candidate rows gathered by the frontier engines before masking.",
)
FRONTIER_INTERSECTIONS = REGISTRY.counter(
    "repro_frontier_intersections_total",
    "Bulk intersection/membership passes, by kernel "
    "(membership, pooled, direct, directed).",
    labels=("kernel",),
)
FRONTIER_SOURCES = REGISTRY.counter(
    "repro_frontier_sources_total",
    "Candidate-source decisions per depth, by choice (pool = auxiliary "
    "chain/group pool, csr = direct CSR rows).",
    labels=("source",),
)
MEMO_HITS = REGISTRY.counter(
    "repro_memo_hits_total",
    "Serving result-memo probes answered from the cache.",
)
MEMO_MISSES = REGISTRY.counter(
    "repro_memo_misses_total",
    "Serving result-memo probes that admitted a new primary execution.",
)
MEMO_COLLAPSED = REGISTRY.counter(
    "repro_memo_collapsed_total",
    "Duplicate submissions collapsed onto an in-flight primary "
    "(single-flight followers).",
)
SERVICE_JOBS = REGISTRY.counter(
    "repro_service_jobs_total",
    "Serving jobs reaching a terminal state, by outcome "
    "(done, failed, cancelled).",
    labels=("state",),
)
SERVICE_QUEUE_DEPTH = REGISTRY.gauge(
    "repro_service_queue_depth",
    "Live queued jobs across MatchService instances (gauge).",
)
SERVICE_JOB_SECONDS = REGISTRY.histogram(
    "repro_service_job_seconds",
    "Submit-to-terminal latency of serving jobs, seconds.",
)
SERVICE_QUEUE_WAIT_SECONDS = REGISTRY.histogram(
    "repro_service_queue_wait_seconds",
    "Time serving jobs spent queued before a worker picked them, seconds.",
)
STREAM_DELTAS = REGISTRY.counter(
    "repro_stream_deltas_total",
    "Per-watch incremental delta evaluations in StreamSession.apply.",
)
DISTRIBUTED_TASKS = REGISTRY.counter(
    "repro_distributed_tasks_total",
    "Root-range tasks executed by the distributed backend's master loop.",
)
PARALLEL_TASKS = REGISTRY.counter(
    "repro_parallel_tasks_total",
    "Prefix tasks claimed by parallel-backend pool workers "
    "(imap_unordered steals, counted master-side).",
)
TRACES_COLLECTED = REGISTRY.counter(
    "repro_traces_collected_total",
    "Trace trees collected (sampled-in collect() calls).",
)
