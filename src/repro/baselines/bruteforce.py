"""Brute-force correctness oracles.

Independent implementations used by the test suite to validate every
other matcher:

* ``bruteforce_count`` — plain backtracking subgraph-isomorphism search
  counting *assignments*, divided by |Aut| to get distinct embeddings.
  No schedules, no restrictions, no intersections — deliberately naive
  so it shares no code (and hence no bugs) with the engine.
* ``bruteforce_enumerate`` — yields each distinct embedding once, as the
  lexicographically smallest assignment of its orbit.
* ``networkx`` VF2 is used in the tests as a third, external oracle.
"""

from __future__ import annotations

from typing import Iterator

from repro.graph.csr import Graph
from repro.pattern.automorphism import automorphism_count, automorphisms
from repro.pattern.pattern import Pattern


def count_assignments(graph: Graph, pattern: Pattern) -> int:
    """Number of isomorphic *assignments* (each embedding counted |Aut| times)."""
    n = pattern.n_vertices
    if n > graph.n_vertices:
        return 0
    assignment: list[int] = []
    used: set[int] = set()
    count = 0

    def backtrack(v: int) -> None:
        nonlocal count
        if v == n:
            count += 1
            return
        for cand in range(graph.n_vertices):
            if cand in used:
                continue
            ok = True
            for prev in range(v):
                if pattern.has_edge(prev, v) and not graph.has_edge(assignment[prev], cand):
                    ok = False
                    break
            if ok:
                assignment.append(cand)
                used.add(cand)
                backtrack(v + 1)
                used.remove(cand)
                assignment.pop()

    backtrack(0)
    return count


def bruteforce_count(graph: Graph, pattern: Pattern) -> int:
    """Distinct embeddings = assignments / |Aut|."""
    total = count_assignments(graph, pattern)
    aut = automorphism_count(pattern)
    q, r = divmod(total, aut)
    if r:
        raise AssertionError(
            f"assignment count {total} not divisible by |Aut|={aut} — "
            "the brute-force matcher is broken"
        )
    return q


def count_induced_assignments(graph: Graph, pattern: Pattern) -> int:
    """Number of *vertex-induced* isomorphic assignments: pattern edges
    map to edges AND pattern non-edges map to non-edges."""
    n = pattern.n_vertices
    if n > graph.n_vertices:
        return 0
    assignment: list[int] = []
    used: set[int] = set()
    count = 0

    def backtrack(v: int) -> None:
        nonlocal count
        if v == n:
            count += 1
            return
        for cand in range(graph.n_vertices):
            if cand in used:
                continue
            ok = True
            for prev in range(v):
                if pattern.has_edge(prev, v) != graph.has_edge(assignment[prev], cand):
                    ok = False
                    break
            if ok:
                assignment.append(cand)
                used.add(cand)
                backtrack(v + 1)
                used.remove(cand)
                assignment.pop()

    backtrack(0)
    return count


def bruteforce_induced_count(graph: Graph, pattern: Pattern) -> int:
    """Distinct vertex-induced embeddings = induced assignments / |Aut|."""
    total = count_induced_assignments(graph, pattern)
    aut = automorphism_count(pattern)
    q, r = divmod(total, aut)
    if r:
        raise AssertionError(
            f"induced assignment count {total} not divisible by |Aut|={aut} — "
            "the brute-force induced matcher is broken"
        )
    return q


def count_directed_assignments(digraph, pattern) -> int:
    """Directed analogue of :func:`count_assignments`: arcs must map to arcs."""
    n = pattern.n_vertices
    if n > digraph.n_vertices:
        return 0
    arcs = pattern.arcs
    assignment: list[int] = []
    used: set[int] = set()
    count = 0

    def backtrack(v: int) -> None:
        nonlocal count
        if v == n:
            count += 1
            return
        for cand in range(digraph.n_vertices):
            if cand in used:
                continue
            ok = True
            for prev in range(v):
                if pattern.has_arc(prev, v) and not digraph.has_arc(assignment[prev], cand):
                    ok = False
                    break
                if pattern.has_arc(v, prev) and not digraph.has_arc(cand, assignment[prev]):
                    ok = False
                    break
            if ok:
                assignment.append(cand)
                used.add(cand)
                backtrack(v + 1)
                used.remove(cand)
                assignment.pop()

    backtrack(0)
    return count


def bruteforce_directed_count(digraph, pattern) -> int:
    """Distinct directed embeddings = assignments / |directed Aut|."""
    from repro.pattern.directed import directed_automorphism_count

    total = count_directed_assignments(digraph, pattern)
    aut = directed_automorphism_count(pattern)
    q, r = divmod(total, aut)
    if r:
        raise AssertionError(
            f"directed assignment count {total} not divisible by |Aut|={aut} — "
            "the brute-force directed matcher is broken"
        )
    return q


def bruteforce_enumerate(graph: Graph, pattern: Pattern) -> Iterator[tuple[int, ...]]:
    """Yield each distinct embedding once (minimal orbit representative),
    as a tuple indexed by pattern vertex."""
    n = pattern.n_vertices
    if n > graph.n_vertices:
        return
    auts = automorphisms(pattern)
    assignment: list[int] = []
    used: set[int] = set()

    def backtrack(v: int) -> Iterator[tuple[int, ...]]:
        if v == n:
            emb = tuple(assignment)
            images = [tuple(emb[sigma[u]] for u in range(n)) for sigma in auts]
            if emb == min(images):
                yield emb
            return
        for cand in range(graph.n_vertices):
            if cand in used:
                continue
            ok = all(
                graph.has_edge(assignment[prev], cand)
                for prev in range(v)
                if pattern.has_edge(prev, v)
            )
            if ok:
                assignment.append(cand)
                used.add(cand)
                yield from backtrack(v + 1)
                used.remove(cand)
                assignment.pop()

    yield from backtrack(0)
