"""Reproduced GraphZero baseline (Mawhirter et al., arXiv:1911.12877).

GraphZero was not released; the GraphPi authors reproduced it, and so do
we.  Its two relevant behaviours, per the GraphPi paper:

* **One restriction set.**  GraphZero breaks symmetry with a single set
  of partial orders derived from the automorphism group — the classic
  orbit/stabiliser symmetry-breaking of Grochow–Kellis: repeatedly pick
  the smallest vertex in a non-trivial orbit, anchor it as the minimum
  of its orbit (``id(v) < id(u)`` for every other orbit member u), and
  descend into the stabiliser.  This provably eliminates all
  automorphisms but offers no *choice* of sets — GraphPi's Table II
  measures exactly the cost of that missed choice.

* **A weaker schedule selection.**  GraphZero scores schedules with a
  degree-only cardinality model (no triangle information — i.e. it
  cannot tell how much an intersection of two neighbourhoods shrinks)
  and considers every connected schedule rather than GraphPi's 2-phase
  filtered set.  Following §V-C, its model tends to pick schedules that
  GraphPi's Figure 9 shows are mediocre.

The *execution* engine is shared with GraphPi (ours), so measured
differences isolate the configuration quality — the same methodology the
paper uses for its breakdown analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import Configuration, ExecutionPlan
from repro.core.engine import Engine
from repro.core.restrictions import RestrictionSet, validate_restriction_set
from repro.core.schedule import Schedule, generate_schedules
from repro.graph.csr import Graph
from repro.graph.stats import GraphStats
from repro.pattern.automorphism import automorphisms, orbits, stabilizer
from repro.pattern.pattern import Pattern


def graphzero_restriction_set(pattern: Pattern) -> RestrictionSet:
    """The single symmetry-breaking set GraphZero generates.

    Orbit anchoring: while the remaining group is non-trivial, take the
    smallest vertex ``v`` lying in a non-singleton orbit, add
    ``id(u) > id(v)`` for every other ``u`` in that orbit, and recurse
    into the pointwise stabiliser of ``v``.
    """
    group = automorphisms(pattern)
    restrictions: set[tuple[int, int]] = set()
    while len(group) > 1:
        anchor = None
        orbit = None
        for orb in orbits(group):
            if len(orb) > 1:
                candidate = min(orb)
                if anchor is None or candidate < anchor:
                    anchor = candidate
                    orbit = orb
        if anchor is None:  # pragma: no cover - group>1 implies an orbit>1
            break
        for u in orbit:
            if u != anchor:
                restrictions.add((u, anchor))
        group = stabilizer(group, anchor)
    res = frozenset(restrictions)
    if not validate_restriction_set(pattern, res):
        raise AssertionError(
            f"orbit symmetry-breaking produced an invalid set for {pattern!r}"
        )
    return res


def graphzero_cost(pattern: Pattern, schedule: Schedule, stats: GraphStats) -> float:
    """GraphZero's degree-only schedule cost.

    Cardinality of an x-neighbourhood intersection is estimated as
    avg_degree scaled by p1 per extra neighbourhood — i.e. the model
    assumes neighbourhood membership is independent (no clustering
    term).  Restrictions are not modelled at all.
    """
    n = pattern.n_vertices
    v = float(stats.n_vertices)
    d = stats.avg_degree
    p1 = stats.p1

    def card(x: int) -> float:
        if x == 0:
            return v
        # x neighbourhoods, independence assumption: |V| * (d/|V|)^x
        return v * (d / v) ** x if v else 0.0

    deps_sizes = []
    for i in range(n):
        x = sum(1 for j in range(i) if pattern.has_edge(schedule[i], schedule[j]))
        deps_sizes.append(x)
    cost = card(deps_sizes[n - 1])
    for i in range(n - 2, -1, -1):
        cost = card(deps_sizes[i]) * (1.0 + cost)
    # Unused: p1 kept for clarity of what the model ignores.
    _ = p1
    return cost


@dataclass(frozen=True)
class GraphZeroPlan:
    config: Configuration
    plan: ExecutionPlan
    predicted_cost: float


class GraphZeroMatcher:
    """Plan + execute with GraphZero's configuration choices."""

    def __init__(self, pattern: Pattern):
        if not pattern.is_connected():
            raise ValueError("pattern must be connected")
        self.pattern = pattern
        self._restrictions = graphzero_restriction_set(pattern)

    @property
    def restriction_set(self) -> RestrictionSet:
        return self._restrictions

    def plan(self, graph: Graph | None = None, *, stats: GraphStats | None = None) -> GraphZeroPlan:
        if stats is None:
            if graph is None:
                raise ValueError("plan() needs a graph or stats")
            stats = GraphStats.of(graph)
        # GraphZero considers connected schedules only (no phase-2 filter).
        schedules = generate_schedules(self.pattern, phase1=True, phase2=False)
        best: tuple[float, Schedule] | None = None
        for s in schedules:
            c = graphzero_cost(self.pattern, s, stats)
            if best is None or c < best[0]:
                best = (c, s)
        assert best is not None
        config = Configuration(self.pattern, best[1], self._restrictions)
        return GraphZeroPlan(config, config.compile(), best[0])

    def count(self, graph: Graph, *, plan: GraphZeroPlan | None = None) -> int:
        p = plan or self.plan(graph)
        return Engine(graph, p.plan).count()

    def match(self, graph: Graph, *, limit: int | None = None):
        p = self.plan(graph)
        return Engine(graph, p.plan).enumerate_embeddings(limit=limit)


def graphzero_count(graph: Graph, pattern: Pattern) -> int:
    """One-shot count with the GraphZero baseline."""
    return GraphZeroMatcher(pattern).count(graph)
