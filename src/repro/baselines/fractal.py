"""Fractal-style baseline: frontier-materialising extension enumeration.

Fractal (SIGMOD'19) and the Arabesque family explore the *embedding
tree*: level ℓ materialises all partial embeddings on ℓ vertices, then
extends each by one vertex.  Two properties define the cost profile that
GraphPi's Figure 8 compares against:

* partial embeddings are *materialised* (memory ∝ frontier width — the
  reason Fractal runs out of memory on Orkut in the paper), and
* duplicates are avoided by *canonicality checks* on each extension
  rather than by precompiled restrictions.

We implement the standard edge-extension scheme: a partial embedding is
extended through neighbours of its vertices, and an extension is
accepted only if the grown embedding is canonical (its vertex list is
the lexicographically smallest automorphism-equivalent ordering among
valid DFS orders).  The per-extension canonicality test is what makes
this an order of magnitude slower than restriction-based pruning —
faithfully so.

The implementation below uses the "smallest extender" canonicality rule
specialised to vertex-induced... rather, pattern-directed search: we fix
one GraphPi schedule (connected order) and deduplicate by accepting an
embedding only when its assignment tuple is minimal among its
automorphic images.  This keeps results identical to GraphPi while
preserving Fractal's frontier-materialising cost structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.schedule import generate_schedules, schedule_dependencies
from repro.graph.csr import Graph
from repro.graph.intersection import intersect_many
from repro.pattern.automorphism import automorphisms
from repro.pattern.pattern import Pattern


@dataclass
class FractalStats:
    """Observable cost profile of a run (memory ∝ peak frontier)."""

    levels: list[int] = field(default_factory=list)
    peak_frontier: int = 0
    extensions_tested: int = 0
    canonicality_rejections: int = 0


class FractalMatcher:
    """Breadth-first extension enumeration with canonicality filtering."""

    def __init__(self, pattern: Pattern, *, max_frontier: int | None = None):
        if not pattern.is_connected():
            raise ValueError("pattern must be connected")
        self.pattern = pattern
        self.max_frontier = max_frontier
        # A fixed connected schedule; phase-2 is a GraphPi notion, not
        # Fractal's, so only phase 1 applies.
        self.schedule = generate_schedules(pattern, phase1=True, phase2=False)[0]
        self.deps = schedule_dependencies(pattern, self.schedule)
        auts = automorphisms(pattern)
        # Orbit of assignment tuples in schedule order: position p of the
        # image of the vertex scheduled at position p.
        pos_of = {v: i for i, v in enumerate(self.schedule)}
        self._aut_on_positions = [
            tuple(pos_of[sigma[self.schedule[p]]] for p in range(pattern.n_vertices))
            for sigma in auts
        ]
        self.stats = FractalStats()

    # ------------------------------------------------------------------
    def _extend(self, graph: Graph, frontier: list[tuple[int, ...]], depth: int
                ) -> list[tuple[int, ...]]:
        out: list[tuple[int, ...]] = []
        deps = self.deps[depth]
        for emb in frontier:
            if deps:
                arrays = [graph.neighbors(emb[j]) for j in deps]
                cands = arrays[0] if len(arrays) == 1 else intersect_many(arrays)
            else:
                cands = graph.vertices()
            for v in cands:
                vi = int(v)
                if vi in emb:
                    continue
                self.stats.extensions_tested += 1
                out.append(emb + (vi,))
        return out

    def _is_canonical(self, emb: tuple[int, ...]) -> bool:
        """Accept only the minimal automorphic image (dedup rule)."""
        for sigma in self._aut_on_positions:
            image = tuple(emb[sigma[p]] for p in range(len(emb)))
            if image < emb:
                self.stats.canonicality_rejections += 1
                return False
        return True

    # ------------------------------------------------------------------
    def enumerate_embeddings(self, graph: Graph) -> Iterator[tuple[int, ...]]:
        """Yield distinct embeddings as tuples in pattern-vertex order."""
        n = self.pattern.n_vertices
        self.stats = FractalStats()
        if n > graph.n_vertices:
            return
        frontier: list[tuple[int, ...]] = [(int(v),) for v in graph.vertices()]
        self._record_level(frontier)
        for depth in range(1, n):
            frontier = self._extend(graph, frontier, depth)
            self._record_level(frontier)
            if self.max_frontier is not None and len(frontier) > self.max_frontier:
                raise MemoryError(
                    f"frontier of {len(frontier)} partial embeddings exceeds "
                    f"the configured cap {self.max_frontier} (Fractal-style "
                    "materialisation ran out of memory)"
                )
        inv = [0] * n
        for p, v in enumerate(self.schedule):
            inv[v] = p
        for emb in frontier:
            if self._is_canonical(emb):
                yield tuple(emb[inv[v]] for v in range(n))

    def count(self, graph: Graph) -> int:
        return sum(1 for _ in self.enumerate_embeddings(graph))

    def _record_level(self, frontier: list) -> None:
        self.stats.levels.append(len(frontier))
        self.stats.peak_frontier = max(self.stats.peak_frontier, len(frontier))


def fractal_count(graph: Graph, pattern: Pattern, *, max_frontier: int | None = None) -> int:
    """One-shot count with the Fractal-style baseline."""
    return FractalMatcher(pattern, max_frontier=max_frontier).count(graph)
