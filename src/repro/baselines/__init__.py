"""Comparator systems: reproduced GraphZero, Fractal-style, brute force.

These are the baselines of the paper's Figure 8 / Table II, plus the
correctness oracle the test-suite validates everything against.
"""

from repro.baselines.bruteforce import (
    bruteforce_count,
    bruteforce_enumerate,
    count_assignments,
)
from repro.baselines.fractal import FractalMatcher, FractalStats, fractal_count
from repro.baselines.graphzero import (
    GraphZeroMatcher,
    GraphZeroPlan,
    graphzero_cost,
    graphzero_count,
    graphzero_restriction_set,
)

__all__ = [
    "bruteforce_count",
    "bruteforce_enumerate",
    "count_assignments",
    "FractalMatcher",
    "FractalStats",
    "fractal_count",
    "GraphZeroMatcher",
    "GraphZeroPlan",
    "graphzero_cost",
    "graphzero_count",
    "graphzero_restriction_set",
]
