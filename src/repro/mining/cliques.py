"""Clique counting — the classic special case (paper's 7-clique example).

A k-clique has the maximal automorphism group (k!), making it the
worst case for naive matchers (each clique found 5 040 times for k = 7)
and the cleanest demonstration of restriction-based elimination: the
complete restriction chain ``id(v_0) > id(v_1) > … > id(v_{k-1})``
turns the search into ordered enumeration.

``clique_count`` uses the general GraphPi pipeline; ``clique_count_ordered``
is the hand-specialised ordered enumeration (they must agree — a test
asserts it), used to sanity-check the general machinery's overhead.
"""

from __future__ import annotations

import numpy as np

from repro.core.query import MatchQuery
from repro.core.session import get_session
from repro.graph.csr import Graph
from repro.graph.intersection import bounded_slice, intersect
from repro.pattern.catalog import clique


def clique_count(graph: Graph, k: int, *, use_iep: bool | None = None, backend=None) -> int:
    """Count k-cliques via the full GraphPi pipeline.

    ``backend`` picks the execution backend from the registry
    (compiled-first by default; ``"parallel"`` fans the ordered
    enumeration out over worker processes).  Queries go through the
    graph's shared session, so repeated clique counts replay the
    cached plan.
    """
    if k < 2:
        raise ValueError("cliques need k >= 2")
    if k == 2:
        return graph.n_edges
    query = MatchQuery(pattern=clique(k), use_iep=use_iep, backend=backend)
    return get_session(graph).count(query).count


def clique_count_ordered(graph: Graph, k: int) -> int:
    """Hand-written ordered k-clique enumeration (reference).

    Classic descending-id DFS: each clique is visited exactly once with
    its vertices in decreasing id order — the same effect GraphPi's
    restriction chain achieves mechanically.
    """
    if k < 2:
        raise ValueError("cliques need k >= 2")
    if k == 2:
        return graph.n_edges

    def rec(cands: np.ndarray, depth: int) -> int:
        if depth == k - 1:
            return len(cands)
        total = 0
        for v in cands:
            vi = int(v)
            # Only neighbours with smaller id keep the descending order.
            nxt = intersect(bounded_slice(graph.neighbors(vi), None, vi), cands)
            if len(nxt) >= k - depth - 2:
                total += rec(nxt, depth + 1)
        return total

    total = 0
    for v in range(graph.n_vertices):
        smaller = bounded_slice(graph.neighbors(v), None, v)
        total += rec(smaller, 1)
    return total


def max_clique_lower_bound(graph: Graph, limit: int = 12) -> int:
    """Largest k ≤ limit with at least one k-clique (greedy + exact count).

    Useful for sizing clique-counting workloads in the examples.
    """
    k = 2
    while k < limit and clique_count(graph, k + 1) > 0:
        k += 1
    return k
