"""k-motif census built on the GraphPi core.

Motif counting — counting every connected k-vertex pattern — is the
graph-mining workload the paper's introduction motivates (RStream's
1.2 TB of intermediate data for 4-motif on MiCo).  With GraphPi-style
counting the census is just one planned count per non-isomorphic
pattern, and IEP collapses the largest terms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.query import MatchQuery
from repro.core.session import MatchSession, get_session
from repro.graph.csr import Graph
from repro.pattern.isomorphism import canonical_form, connected_patterns
from repro.pattern.pattern import Pattern


@dataclass(frozen=True)
class MotifCount:
    pattern: Pattern
    count: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MotifCount({self.pattern.name}: {self.count})"


def motif_census(
    graph: Graph, k: int, *, use_iep: bool | None = None, backend=None,
    session: MatchSession | None = None,
) -> list[MotifCount]:
    """Count every connected k-vertex motif in ``graph``.

    Returns counts ordered by edge count then canonical form (stable
    across runs).  k ≤ 5 keeps the pattern set small (3, 6, 21 motifs
    for k = 3, 4, 5).  ``backend`` selects the execution backend for
    every per-pattern count (default: compiled-first).

    The census is a batch of :class:`~repro.core.query.MatchQuery`
    objects against one :class:`~repro.core.session.MatchSession`
    (``session`` defaults to the graph's shared one), so re-running a
    census — or mixing it with other workloads on the same graph —
    reuses every cached plan instead of re-planning per call.
    """
    if k < 3:
        raise ValueError("motif census is defined for k >= 3")
    if session is not None and session.graph is not graph:
        raise ValueError("session is bound to a different graph object")
    session = session or get_session(graph)
    # The preference rides on the query so planning can consult the
    # backend's capabilities (an IEP-incapable backend plans IEP-free).
    queries = [
        MatchQuery(pattern=p, use_iep=use_iep, backend=backend)
        for p in connected_patterns(k)
    ]
    results = session.count_many(queries)
    return [
        MotifCount(q.pattern, r.count) for q, r in zip(queries, results)
    ]


def motif_frequencies(
    graph: Graph, k: int, *, use_iep: bool | None = None, backend=None
) -> dict[str, float]:
    """Relative motif frequencies (counts normalised to sum 1)."""
    census = motif_census(graph, k, use_iep=use_iep, backend=backend)
    total = sum(m.count for m in census)
    if total == 0:
        return {m.pattern.name: 0.0 for m in census}
    return {m.pattern.name: m.count / total for m in census}


def induced_motif_census(
    graph: Graph, k: int, *, backend=None, session: MatchSession | None = None
) -> list[MotifCount]:
    """Count every connected k-vertex motif under *vertex-induced*
    semantics (the AutoMine/GraphZero definition, §V-A).

    Computed the cheap way: one edge-induced census (IEP-accelerated,
    plan-cached through the shared session), then a single triangular
    Möbius inversion over the supergraph lattice — no induced
    enumeration at all.  The diagonal of the lattice is the k-clique,
    whose counts coincide under both semantics.
    """
    from repro.core.induced import supergraph_decomposition

    census = motif_census(graph, k, backend=backend, session=session)
    noninduced = {canonical_form(m.pattern): m.count for m in census}
    induced: dict[tuple[int, int], int] = {}
    # Densest-first back-substitution (same recurrence as
    # induced_count_via_moebius, amortised across the whole census).
    for m in sorted(census, key=lambda m: -m.pattern.n_edges):
        key = canonical_form(m.pattern)
        total = noninduced[key]
        for term in supergraph_decomposition(m.pattern)[1:]:
            total -= term.coefficient * induced[canonical_form(term.pattern)]
        if total < 0:
            raise AssertionError(
                f"negative induced count for {m.pattern!r}: census inconsistent"
            )
        induced[key] = total
    return [MotifCount(m.pattern, induced[canonical_form(m.pattern)]) for m in census]


def classify_motif(pattern: Pattern, k: int) -> int:
    """Index of ``pattern`` within the canonical ``connected_patterns(k)``
    ordering (raises if the pattern is not a connected k-motif)."""
    if pattern.n_vertices != k:
        raise ValueError(f"pattern has {pattern.n_vertices} vertices, expected {k}")
    if not pattern.is_connected():
        raise ValueError("motifs are connected patterns")
    target = canonical_form(pattern)
    for idx, candidate in enumerate(connected_patterns(k)):
        if canonical_form(candidate) == target:
            return idx
    raise AssertionError("connected_patterns(k) must contain every connected k-pattern")
