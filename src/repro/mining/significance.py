"""Motif statistical significance: counts against degree-preserving nulls.

The network-motif methodology [Milo et al.] that made motif counting a
standard workload (and that the paper's bioinformatics motivation [2]
points at): a pattern count is only meaningful against a *null model* —
random graphs with the same degree sequence.  The pipeline is

1. randomise the graph by repeated **double-edge swaps**
   ((a–b), (c–d) → (a–d), (c–b)), which provably preserve every degree
   (in- and out-degrees separately in the directed case);
2. count the pattern on an ensemble of such randomisations with the
   normal GraphPi pipeline;
3. report the z-score ``(observed − mean_null) / std_null``.

Each ensemble member is one full matcher run, which is exactly the
repeated-counting workload GraphPi accelerates; both the undirected
(:func:`repro.core.api.count_pattern`) and directed
(:func:`repro.core.directed.count_directed`) matchers are dispatched on
the pattern type.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.graph.csr import Graph
from repro.graph.digraph import DiGraph, digraph_from_edges
from repro.graph.dynamic import DynamicGraph
from repro.pattern.directed import DiPattern
from repro.pattern.pattern import Pattern
from repro.utils.rng import make_rng


def double_edge_swap(graph: Graph, n_swaps: int | None = None, seed=None) -> Graph:
    """Degree-preserving randomisation of an undirected graph.

    Performs ``n_swaps`` successful swaps (default ``10 · |E|``, the
    usual mixing heuristic): pick two edges (a–b), (c–d) and rewire to
    (a–d), (c–b), rejecting any swap that would create a self-loop or a
    duplicate edge.  Every vertex keeps its exact degree.
    """
    if graph.n_edges < 2:
        return graph
    if n_swaps is None:
        n_swaps = 10 * graph.n_edges
    if n_swaps < 0:
        raise ValueError("n_swaps must be non-negative")
    rng = make_rng(seed)
    dyn = DynamicGraph.from_graph(graph)
    edges = list(dyn.edges())
    done = 0
    attempts = 0
    max_attempts = 40 * max(n_swaps, 1)
    while done < n_swaps and attempts < max_attempts:
        attempts += 1
        i, j = rng.integers(len(edges)), rng.integers(len(edges))
        if i == j:
            continue
        a, b = edges[i]
        c, d = edges[j]
        # orient the second edge randomly so both pairings are reachable
        if rng.random() < 0.5:
            c, d = d, c
        if len({a, b, c, d}) < 4:
            continue
        if dyn.has_edge(a, d) or dyn.has_edge(c, b):
            continue
        dyn.remove_edge(a, b)
        dyn.remove_edge(c, d)
        dyn.add_edge(a, d)
        dyn.add_edge(c, b)
        edges[i] = (a, d)
        edges[j] = (c, b)
        done += 1
    return dyn.snapshot(name=f"{graph.name}-rewired" if graph.name else "rewired")


def directed_edge_swap(graph: DiGraph, n_swaps: int | None = None, seed=None) -> DiGraph:
    """In/out-degree-preserving randomisation of a digraph.

    Swaps arc *targets*: (a→b), (c→d) become (a→d), (c→b).  Every
    vertex keeps its exact out-degree (sources untouched) and in-degree
    (the target multiset is permuted).
    """
    if graph.n_arcs < 2:
        return graph
    if n_swaps is None:
        n_swaps = 10 * graph.n_arcs
    if n_swaps < 0:
        raise ValueError("n_swaps must be non-negative")
    rng = make_rng(seed)
    arcs = list(graph.arcs())
    arc_set = set(arcs)
    done = 0
    attempts = 0
    max_attempts = 40 * max(n_swaps, 1)
    while done < n_swaps and attempts < max_attempts:
        attempts += 1
        i, j = rng.integers(len(arcs)), rng.integers(len(arcs))
        if i == j:
            continue
        a, b = arcs[i]
        c, d = arcs[j]
        if a == d or c == b or b == d:
            continue  # self-loop or no-op
        if (a, d) in arc_set or (c, b) in arc_set:
            continue
        arc_set.discard((a, b))
        arc_set.discard((c, d))
        arc_set.add((a, d))
        arc_set.add((c, b))
        arcs[i] = (a, d)
        arcs[j] = (c, b)
        done += 1
    return digraph_from_edges(
        sorted(arc_set),
        n_vertices=graph.n_vertices,
        name=f"{graph.name}-rewired" if graph.name else "rewired",
    )


@dataclass(frozen=True)
class MotifZScore:
    """Significance record for one pattern against the null ensemble."""

    pattern: object  # Pattern | DiPattern
    observed: int
    null_mean: float
    null_std: float
    null_counts: tuple[int, ...]

    @property
    def zscore(self) -> float:
        """(observed − mean) / std; ±inf when the null never varies but
        the observation differs, 0 when it matches a constant null."""
        if self.null_std > 0:
            return (self.observed - self.null_mean) / self.null_std
        if self.observed == self.null_mean:
            return 0.0
        return math.inf if self.observed > self.null_mean else -math.inf

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        name = getattr(self.pattern, "name", "") or "pattern"
        return (
            f"MotifZScore({name}: observed={self.observed}, "
            f"null={self.null_mean:.1f}±{self.null_std:.1f}, z={self.zscore:+.2f})"
        )


def _count(graph, pattern, backend=None) -> int:
    """One pattern count through the unified session facade.

    :class:`~repro.core.query.MatchQuery` infers the mode from the
    pattern type (directed vs plain), and the graph's shared session
    caches the plan — counting the same pattern on the observed graph
    and on each ensemble member plans exactly once per graph.
    """
    from repro.core.query import MatchQuery
    from repro.core.session import get_session

    return get_session(graph).count(MatchQuery(pattern=pattern), backend=backend).count


def motif_significance(
    graph: Graph | DiGraph,
    patterns: Sequence[Pattern | DiPattern],
    *,
    n_random: int = 10,
    swaps_per_edge: int = 10,
    seed=None,
    backend=None,
) -> list[MotifZScore]:
    """z-scores for ``patterns`` against a degree-preserving ensemble.

    ``n_random`` graphs are generated by edge swaps (``swaps_per_edge``
    successful swaps per edge each), every pattern is counted on every
    ensemble member, and per-pattern z-scores are returned in input
    order.  Directed graphs require directed patterns and vice versa.
    """
    if n_random < 2:
        raise ValueError("n_random must be >= 2 to estimate a null std")
    directed = isinstance(graph, DiGraph)
    for p in patterns:
        if isinstance(p, DiPattern) != directed:
            raise TypeError(
                "pattern kind must match the graph: "
                f"{'directed' if directed else 'undirected'} graph with {p!r}"
            )
    rng = make_rng(seed)
    size = graph.n_arcs if directed else graph.n_edges
    swap = directed_edge_swap if directed else double_edge_swap
    ensemble = [
        swap(graph, n_swaps=swaps_per_edge * size, seed=int(rng.integers(2**31)))
        for _ in range(n_random)
    ]
    out: list[MotifZScore] = []
    for pattern in patterns:
        observed = _count(graph, pattern, backend)
        null_counts = tuple(_count(g, pattern, backend) for g in ensemble)
        arr = np.asarray(null_counts, dtype=np.float64)
        out.append(
            MotifZScore(
                pattern=pattern,
                observed=observed,
                null_mean=float(arr.mean()),
                null_std=float(arr.std(ddof=1)),
                null_counts=null_counts,
            )
        )
    return out
