"""Frequent subgraph mining (FSM-lite) on a single large labeled graph.

The paper's related work (§VI, [24][25]) covers FSM systems — ScaleMine,
GraMi-style distributed miners — whose inner loop is exactly the
operation GraphPi accelerates: counting/enumerating one labeled pattern
in one large graph.  This module closes the loop by building a
single-graph FSM on top of :mod:`repro.core.labeled`:

* **support measure**: MNI (minimum node image) — for each pattern
  vertex, the number of distinct data vertices appearing in that role
  across all embeddings; the pattern's support is the minimum over its
  vertices.  MNI is the standard single-graph measure (GraMi) because it
  is *anti-monotone*: extending a pattern can only shrink its support,
  which makes level-wise pruning sound.
* **search**: level-wise pattern growth from frequent single vertices,
  extending one edge at a time (either to a new labeled vertex or
  closing a cycle between existing vertices), deduplicated by a labeled
  canonical form, pruned by anti-monotonicity, and evaluated with the
  full GraphPi pipeline (labeled restriction sets + model-chosen
  schedules) per candidate.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations

from repro.core.query import MatchQuery
from repro.core.session import MatchSession, get_session
from repro.graph.labeled import LabeledGraph
from repro.pattern.labeled import LabeledPattern, labeled_automorphisms
from repro.pattern.pattern import Pattern


def labeled_canonical_form(lp: LabeledPattern) -> tuple:
    """A relabelling-invariant key for a labeled pattern.

    Brute-force minimum over vertex permutations of the
    (label-sequence, upper-triangle adjacency bits) encoding — factorial
    in pattern size, which FSM keeps tiny (≤ 6 vertices).
    """
    n = lp.n_vertices
    best = None
    for perm in permutations(range(n)):
        labels = tuple(lp.labels[perm[i]] for i in range(n))
        bits = 0
        pos = 0
        for i in range(n):
            for j in range(i + 1, n):
                if lp.pattern.has_edge(perm[i], perm[j]):
                    bits |= 1 << pos
                pos += 1
        key = (labels, bits)
        if best is None or key < best:
            best = key
    return (n,) + best


def mni_support(
    lgraph: LabeledGraph, lp: LabeledPattern, *, session: MatchSession | None = None
) -> int:
    """Minimum node image support of ``lp`` in ``lgraph``.

    Enumerates distinct embeddings through the unified session facade
    (``session`` defaults to the graph's shared one, so FSM's many
    support queries reuse cached plans), then closes each vertex-role
    domain under the labeled automorphism group (the matcher yields one
    representative per orbit; the other orbit members place different
    data vertices in the same role).
    """
    n = lp.n_vertices
    if n == 1:
        return int(len(lgraph.vertices_with_label(lp.labels[0])))
    if session is not None and session.graph is not lgraph:
        raise ValueError("session is bound to a different graph object")
    session = session or get_session(lgraph)
    auts = labeled_automorphisms(lp)
    domains: list[set[int]] = [set() for _ in range(n)]
    for emb in session.enumerate(MatchQuery(pattern=lp)):
        for sigma in auts:
            for v in range(n):
                domains[v].add(emb[sigma[v]])
    return min(len(d) for d in domains)


@dataclass(frozen=True)
class FrequentPattern:
    """One FSM result: a labeled pattern and its MNI support."""

    pattern: LabeledPattern
    support: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FrequentPattern({self.pattern.n_vertices}v/"
            f"{self.pattern.pattern.n_edges}e labels={self.pattern.labels} "
            f"support={self.support})"
        )


def _extensions(lp: LabeledPattern, labels: list[int]) -> list[LabeledPattern]:
    """All one-edge extensions of a labeled pattern.

    Forward extensions attach a new vertex (with every candidate label)
    to every existing vertex; backward extensions close a missing edge
    between existing vertices.  Duplicates are left to the caller's
    canonical-form dedup.
    """
    out: list[LabeledPattern] = []
    n = lp.n_vertices
    edges = lp.pattern.edges
    # backward: close an anti-edge
    for u in range(n):
        for v in range(u + 1, n):
            if not lp.pattern.has_edge(u, v):
                out.append(
                    LabeledPattern(Pattern(n, edges + [(u, v)]), lp.labels)
                )
    # forward: new vertex with each label, attached to each vertex
    for anchor in range(n):
        for lab in labels:
            out.append(
                LabeledPattern(
                    Pattern(n + 1, edges + [(anchor, n)]),
                    lp.labels + (lab,),
                )
            )
    return out


def frequent_subgraphs(
    lgraph: LabeledGraph,
    min_support: int,
    *,
    max_vertices: int = 4,
) -> list[FrequentPattern]:
    """Mine all connected labeled patterns with MNI support ≥ threshold.

    Level-wise growth: level 1 is the frequent labels; each subsequent
    level extends the previous level's survivors by one edge.  Because
    MNI is anti-monotone, any pattern whose parent was infrequent cannot
    be frequent — growing only from survivors *is* the pruning.

    Returns results ordered by (n_vertices, n_edges, canonical form);
    each isomorphism class appears once.
    """
    if min_support < 1:
        raise ValueError("min_support must be >= 1")
    if max_vertices < 1:
        raise ValueError("max_vertices must be >= 1")

    session = get_session(lgraph)
    hist = lgraph.label_histogram()
    frequent_labels = sorted(l for l, c in hist.items() if c >= min_support)
    results: list[FrequentPattern] = []
    level: list[FrequentPattern] = []
    for lab in frequent_labels:
        fp = FrequentPattern(
            LabeledPattern(Pattern(1, []), (lab,)), hist[lab]
        )
        results.append(fp)
        level.append(fp)

    seen: set[tuple] = set()
    while level:
        next_level: list[FrequentPattern] = []
        for fp in level:
            for cand in _extensions(fp.pattern, frequent_labels):
                if cand.n_vertices > max_vertices:
                    continue
                key = labeled_canonical_form(cand)
                if key in seen:
                    continue
                seen.add(key)
                support = mni_support(lgraph, cand, session=session)
                if support >= min_support:
                    next_level.append(FrequentPattern(cand, support))
        # a level mixes sizes (backward extensions stay at the same
        # vertex count); iterate until no new frequent pattern appears —
        # termination is guaranteed by the finite (deduped) search space.
        results.extend(next_level)
        level = next_level

    results.sort(
        key=lambda fp: (
            fp.pattern.n_vertices,
            fp.pattern.pattern.n_edges,
            labeled_canonical_form(fp.pattern),
        )
    )
    return results
