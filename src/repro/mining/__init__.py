"""Graph-mining applications layered on the GraphPi core.

The motif census and clique counting exercise the public API the way
the paper's motivating applications (4-motif on MiCo, 7-clique) do.
"""

from repro.mining.cliques import clique_count, clique_count_ordered, max_clique_lower_bound
from repro.mining.motifs import MotifCount, classify_motif, motif_census, motif_frequencies

__all__ = [
    "clique_count",
    "clique_count_ordered",
    "max_clique_lower_bound",
    "MotifCount",
    "classify_motif",
    "motif_census",
    "motif_frequencies",
]
