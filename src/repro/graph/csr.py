"""Compressed-sparse-row graph storage with sorted neighbour lists.

This mirrors GraphPi's data layout (§IV-E): *"GraphPi stores graphs in the
compressed sparse row (CSR) format, that is, the neighborhood of a vertex
is sorted and continuous in memory"*.  All matching kernels rely on the
sortedness invariant, which is validated at construction.

The graph is undirected and unlabeled (as in the paper); an undirected
edge {u, v} is stored in both adjacency rows.  Self-loops and duplicate
edges are rejected by the builder, not here — ``Graph`` trusts (and
verifies) its inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.graph.intersection import VERTEX_DTYPE, contains


@dataclass(frozen=True)
class Graph:
    """An immutable undirected graph in CSR form.

    Attributes
    ----------
    indptr:
        ``int64[n_vertices + 1]`` — row offsets into ``indices``.
    indices:
        ``int64[2 * n_edges]`` — concatenated, per-row sorted neighbour
        lists.
    name:
        Optional human-readable dataset name (used in benchmark tables).
    """

    indptr: np.ndarray
    indices: np.ndarray
    name: str = ""

    def __post_init__(self):
        indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        indices = np.ascontiguousarray(self.indices, dtype=VERTEX_DTYPE)
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ValueError("indptr and indices must be 1-D arrays")
        if len(indptr) == 0 or indptr[0] != 0 or indptr[-1] != len(indices):
            raise ValueError("malformed indptr: must start at 0 and end at len(indices)")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        n = len(indptr) - 1
        if len(indices) and (indices.min() < 0 or indices.max() >= n):
            raise ValueError("neighbour index out of range")
        # Sortedness (strict) per row: within each row diffs must be > 0.
        if len(indices) > 1:
            diffs = np.diff(indices)
            row_starts = indptr[1:-1]
            # A diff position straddling a row boundary is exempt; empty
            # rows put their boundary at 0 or len(indices) — skip those.
            boundary = row_starts[(row_starts > 0) & (row_starts < len(indices))]
            interior = np.ones(len(diffs), dtype=bool)
            interior[boundary - 1] = False
            if np.any(diffs[interior] <= 0):
                raise ValueError("neighbour lists must be strictly increasing (sorted, no dups)")
        # A vertex adjacent to itself would break injectivity assumptions.
        if len(indices):
            row_ids = np.repeat(np.arange(n, dtype=VERTEX_DTYPE), np.diff(indptr))
            if np.any(row_ids == indices):
                v = int(row_ids[np.argmax(row_ids == indices)])
                raise ValueError(f"self-loop at vertex {v} is not allowed")

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        return len(self.indptr) - 1

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return len(self.indices) // 2

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    @property
    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    @property
    def max_degree(self) -> int:
        d = self.degrees
        return int(d.max()) if len(d) else 0

    @property
    def avg_degree(self) -> float:
        return 2.0 * self.n_edges / self.n_vertices if self.n_vertices else 0.0

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbour array of ``v`` (a view — do not mutate)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        if not (0 <= u < self.n_vertices and 0 <= v < self.n_vertices):
            return False
        # Search the smaller adjacency row.
        if self.degree(u) > self.degree(v):
            u, v = v, u
        return contains(self.neighbors(u), v)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate undirected edges as (u, v) with u < v."""
        for u in range(self.n_vertices):
            for v in self.neighbors(u):
                if u < v:
                    yield (u, int(v))

    def vertices(self) -> np.ndarray:
        return np.arange(self.n_vertices, dtype=VERTEX_DTYPE)

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def subgraph(self, keep: np.ndarray) -> "Graph":
        """Vertex-induced subgraph, relabelled to 0..len(keep)-1.

        ``keep`` is an array of original vertex ids; the returned graph's
        vertex ``i`` corresponds to ``keep_sorted[i]``.
        """
        keep = np.unique(np.asarray(keep, dtype=VERTEX_DTYPE))
        remap = -np.ones(self.n_vertices, dtype=VERTEX_DTYPE)
        remap[keep] = np.arange(len(keep), dtype=VERTEX_DTYPE)
        rows: list[np.ndarray] = []
        indptr = np.zeros(len(keep) + 1, dtype=np.int64)
        for new_id, old_id in enumerate(keep):
            nbrs = self.neighbors(int(old_id))
            mapped = remap[nbrs]
            mapped = mapped[mapped >= 0]
            mapped.sort()
            rows.append(mapped)
            indptr[new_id + 1] = indptr[new_id] + len(mapped)
        indices = np.concatenate(rows) if rows else np.empty(0, dtype=VERTEX_DTYPE)
        return Graph(indptr, indices, name=f"{self.name}#sub" if self.name else "")

    def relabel_by_degree(self, descending: bool = True) -> "Graph":
        """Return an isomorphic graph with vertices renumbered by degree.

        Degree ordering is a classic locality optimisation: restrictions
        like ``id(u) > id(v)`` then correlate with degree, which changes
        constant factors but not counts.  Exposed for experimentation.
        """
        order = np.argsort(-self.degrees if descending else self.degrees, kind="stable")
        remap = np.empty(self.n_vertices, dtype=VERTEX_DTYPE)
        remap[order] = np.arange(self.n_vertices, dtype=VERTEX_DTYPE)
        rows = []
        indptr = np.zeros(self.n_vertices + 1, dtype=np.int64)
        for new_id, old_id in enumerate(order):
            mapped = remap[self.neighbors(int(old_id))]
            mapped.sort()
            rows.append(mapped)
            indptr[new_id + 1] = indptr[new_id] + len(mapped)
        indices = np.concatenate(rows) if rows else np.empty(0, dtype=VERTEX_DTYPE)
        return Graph(indptr, indices, name=self.name)

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return f"Graph({self.n_vertices} vertices, {self.n_edges} edges{label})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return np.array_equal(self.indptr, other.indptr) and np.array_equal(
            self.indices, other.indices
        )

    def __hash__(self) -> int:
        return hash((self.n_vertices, len(self.indices), self.indices[:16].tobytes()))
