"""Vertex orderings: making asymmetric restrictions data-aware.

GraphPi's restrictions compare *vertex ids* (§IV-A): ``id(A) > id(B)``
prunes the sorted candidate stream by a binary-searched bound.  How much
work a restriction saves therefore depends on how ids correlate with
degree — a fact the paper leaves implicit (its SNAP inputs arrive with
essentially arbitrary ids).  This module makes the knob explicit:

* :func:`degree_order` / :func:`relabel_by_degree` — ids ascend with
  degree, so a ``<``-bound (the common shape in clique restriction
  sets) slices away the high-degree tail of every candidate set.  This
  is the classic *orientation* trick: counting each clique from its
  lowest-degree vertex.
* :func:`degeneracy_order` / :func:`relabel_by_degeneracy` — the k-core
  peeling order; bounds every vertex's number of higher-ordered
  neighbours by the graph's degeneracy (much smaller than the max
  degree on real graphs), the strongest classical guarantee for this
  family of algorithms.

``benchmarks/bench_ablation_orientation.py`` measures the effect on
clique counting over a power-law proxy; identity vs degree vs degeneracy
ordering differ only in the relabelling — plan and engine are identical.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graph.csr import Graph
from repro.graph.intersection import VERTEX_DTYPE


def degree_order(graph: Graph) -> np.ndarray:
    """Vertices sorted by (degree, id) ascending.

    Returns ``order`` with ``order[k]`` = the vertex placed at rank k.
    """
    degrees = graph.degrees.astype(np.int64)
    return np.lexsort((np.arange(graph.n_vertices), degrees)).astype(VERTEX_DTYPE)


def degeneracy_order(graph: Graph) -> tuple[np.ndarray, int]:
    """Smallest-last (k-core peeling) order and the degeneracy.

    Repeatedly removes a minimum-degree vertex; the largest degree seen
    at removal time is the graph's degeneracy d, and every vertex has at
    most d neighbours placed *after* it in the returned order.
    """
    n = graph.n_vertices
    deg = graph.degrees.astype(np.int64).copy()
    removed = np.zeros(n, dtype=bool)
    heap = [(int(deg[v]), v) for v in range(n)]
    heapq.heapify(heap)
    order = np.empty(n, dtype=VERTEX_DTYPE)
    degeneracy = 0
    k = 0
    while heap:
        d, v = heapq.heappop(heap)
        if removed[v] or d != deg[v]:
            continue  # stale heap entry
        removed[v] = True
        degeneracy = max(degeneracy, int(d))
        order[k] = v
        k += 1
        for u in graph.neighbors(v):
            ui = int(u)
            if not removed[ui]:
                deg[ui] -= 1
                heapq.heappush(heap, (int(deg[ui]), ui))
    assert k == n
    return order, degeneracy


def apply_order(graph: Graph, order: np.ndarray, name: str = "") -> tuple[Graph, np.ndarray]:
    """Relabel so that ``order[k]`` becomes vertex ``k``.

    Returns ``(relabeled_graph, perm)`` with ``perm[old] = new``;
    embeddings found in the relabeled graph map back through
    ``order[new] = old``.
    """
    n = graph.n_vertices
    order = np.asarray(order, dtype=VERTEX_DTYPE)
    if sorted(order.tolist()) != list(range(n)):
        raise ValueError("order must be a permutation of the vertices")
    perm = np.empty(n, dtype=VERTEX_DTYPE)
    perm[order] = np.arange(n, dtype=VERTEX_DTYPE)
    # new adjacency: vertex k's row is old vertex order[k]'s row, mapped
    counts = np.diff(graph.indptr)[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    indices = np.empty(len(graph.indices), dtype=VERTEX_DTYPE)
    for k in range(n):
        row = perm[graph.neighbors(int(order[k]))]
        row.sort()
        indices[indptr[k] : indptr[k + 1]] = row
    return Graph(indptr, indices, name=name or graph.name), perm


def relabel_by_degree(graph: Graph) -> tuple[Graph, np.ndarray]:
    """Relabel so ids ascend with degree; returns (graph, perm[old]=new)."""
    return apply_order(graph, degree_order(graph), name=graph.name)


def relabel_by_degeneracy(graph: Graph) -> tuple[Graph, np.ndarray]:
    """Relabel by the smallest-last order; returns (graph, perm[old]=new)."""
    order, _ = degeneracy_order(graph)
    return apply_order(graph, order, name=graph.name)


def oriented_out_degrees(graph: Graph, order: np.ndarray) -> np.ndarray:
    """Per-vertex count of neighbours placed later in ``order``.

    The quantity the degeneracy guarantee bounds: with a degeneracy
    order this never exceeds the degeneracy.
    """
    n = graph.n_vertices
    rank = np.empty(n, dtype=np.int64)
    rank[np.asarray(order, dtype=np.int64)] = np.arange(n)
    out = np.zeros(n, dtype=np.int64)
    for v in range(n):
        out[v] = int((rank[graph.neighbors(v)] > rank[v]).sum())
    return out
