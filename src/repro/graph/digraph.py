"""Directed graph storage: dual CSR (out- and in-adjacency).

The paper (§II-A) scopes its presentation to undirected graphs but
asserts *"all methods proposed in this paper can be easily extended to
directed and labeled graphs"*.  This module provides the directed data
substrate for that extension (:mod:`repro.core.directed` builds the
matching machinery on top).

Layout follows the undirected :class:`repro.graph.csr.Graph` exactly —
sorted, duplicate-free neighbour rows so that candidate sets remain
sorted-array intersections — but keeps *two* CSR structures, because a
directed pattern edge constrains a candidate through either the
out-neighbourhood or the in-neighbourhood of an already-bound vertex.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.graph.csr import Graph
from repro.graph.intersection import VERTEX_DTYPE, contains


def _csr_from_sorted(rows: np.ndarray, cols: np.ndarray, n: int):
    """CSR arrays from (row, col) pairs pre-sorted by (row, col)."""
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return indptr, cols.astype(VERTEX_DTYPE)


def _check_rows_sorted(indptr: np.ndarray, indices: np.ndarray, what: str) -> None:
    if len(indices) > 1:
        diffs = np.diff(indices)
        row_starts = indptr[1:-1]
        boundary = row_starts[(row_starts > 0) & (row_starts < len(indices))]
        interior = np.ones(len(diffs), dtype=bool)
        interior[boundary - 1] = False
        if np.any(diffs[interior] <= 0):
            raise ValueError(f"{what} rows must be strictly increasing (sorted, no dups)")


@dataclass(frozen=True)
class DiGraph:
    """An immutable directed graph with sorted out- and in-adjacency.

    ``out_indptr``/``out_indices`` hold, per vertex, its successors;
    ``in_indptr``/``in_indices`` its predecessors.  The two structures
    describe the same arc set (validated at construction).  Antiparallel
    arc pairs u→v, v→u are two distinct arcs; self-loops are rejected.
    """

    out_indptr: np.ndarray
    out_indices: np.ndarray
    in_indptr: np.ndarray
    in_indices: np.ndarray
    name: str = ""

    def __post_init__(self):
        for attr in ("out_indptr", "out_indices", "in_indptr", "in_indices"):
            arr = np.ascontiguousarray(getattr(self, attr), dtype=np.int64)
            object.__setattr__(self, attr, arr)
        if len(self.out_indptr) != len(self.in_indptr):
            raise ValueError("out and in structures must agree on vertex count")
        for indptr, indices, what in (
            (self.out_indptr, self.out_indices, "out"),
            (self.in_indptr, self.in_indices, "in"),
        ):
            if len(indptr) == 0 or indptr[0] != 0 or indptr[-1] != len(indices):
                raise ValueError(f"malformed {what}_indptr")
            if np.any(np.diff(indptr) < 0):
                raise ValueError(f"{what}_indptr must be non-decreasing")
            n = len(indptr) - 1
            if len(indices) and (indices.min() < 0 or indices.max() >= n):
                raise ValueError(f"{what} neighbour index out of range")
            _check_rows_sorted(indptr, indices, what)
        if len(self.out_indices) != len(self.in_indices):
            raise ValueError("out and in structures must hold the same number of arcs")
        # Arc-set equality: the (u → v) pairs of the out structure must be
        # exactly the (v ← u) pairs of the in structure.
        n = self.n_vertices
        out_src = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(self.out_indptr)
        )
        if np.any(out_src == self.out_indices):
            raise ValueError("self-loops are not allowed")
        in_dst = np.repeat(np.arange(n, dtype=np.int64), np.diff(self.in_indptr))
        out_keys = np.sort(out_src * np.int64(max(n, 1)) + self.out_indices)
        in_keys = np.sort(self.in_indices * np.int64(max(n, 1)) + in_dst)
        if not np.array_equal(out_keys, in_keys):
            raise ValueError("out- and in-adjacency describe different arc sets")

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        return len(self.out_indptr) - 1

    @property
    def n_arcs(self) -> int:
        return len(self.out_indices)

    def out_neighbors(self, v: int) -> np.ndarray:
        return self.out_indices[self.out_indptr[v] : self.out_indptr[v + 1]]

    def in_neighbors(self, v: int) -> np.ndarray:
        return self.in_indices[self.in_indptr[v] : self.in_indptr[v + 1]]

    def out_degree(self, v: int) -> int:
        return int(self.out_indptr[v + 1] - self.out_indptr[v])

    def in_degree(self, v: int) -> int:
        return int(self.in_indptr[v + 1] - self.in_indptr[v])

    def has_arc(self, u: int, v: int) -> bool:
        """True iff the arc u → v exists."""
        return contains(self.out_neighbors(u), v)

    def vertices(self) -> np.ndarray:
        return np.arange(self.n_vertices, dtype=VERTEX_DTYPE)

    def arcs(self) -> Iterable[tuple[int, int]]:
        for u in range(self.n_vertices):
            for v in self.out_neighbors(u):
                yield u, int(v)

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_undirected(self) -> Graph:
        """Collapse arc directions (antiparallel pairs merge into one edge).

        Vertex ids are preserved (no compaction): consumers such as the
        skeleton-sharing reduction classify undirected-view embeddings
        against this digraph's arcs, so both graphs must index the same
        vertex space even when some vertices are isolated.
        """
        from repro.graph.builder import GraphBuilder
        from repro.graph.generators import empty_graph, _pad_isolated

        edges = list(self.arcs())
        if not edges:
            return empty_graph(self.n_vertices, name=self.name)
        builder = GraphBuilder(compact_ids=False, name=self.name)
        builder.add_edges(edges)
        g = builder.build()
        if g.n_vertices < self.n_vertices:
            g = _pad_isolated(g, self.n_vertices)
        return g

    @classmethod
    def from_undirected(cls, graph: Graph, name: str = "") -> "DiGraph":
        """Symmetric digraph: every undirected edge becomes both arcs.

        On such a digraph directed matching degenerates predictably
        (each undirected embedding contributes a fixed number of
        orientations) — the cross-check the directed tests rely on.
        """
        # The undirected CSR already stores each edge in both rows sorted;
        # out- and in-adjacency coincide.
        return cls(
            out_indptr=graph.indptr,
            out_indices=graph.indices,
            in_indptr=graph.indptr,
            in_indices=graph.indices,
            name=name or graph.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f"{self.name!r}, " if self.name else ""
        return f"DiGraph({label}{self.n_vertices} vertices, {self.n_arcs} arcs)"

    def __eq__(self, other) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return np.array_equal(self.out_indptr, other.out_indptr) and np.array_equal(
            self.out_indices, other.out_indices
        )

    def __hash__(self) -> int:
        return hash((self.n_vertices, self.n_arcs, self.out_indices[:16].tobytes()))


# ---------------------------------------------------------------------------
# construction
# ---------------------------------------------------------------------------
def digraph_from_edges(
    edges: Iterable[tuple[int, int]],
    *,
    n_vertices: int | None = None,
    name: str = "",
) -> DiGraph:
    """Build a :class:`DiGraph` from (source, target) arc pairs.

    Self-loops are dropped, duplicate arcs deduplicated.  Vertex ids are
    used as-is (no compaction): pass ``n_vertices`` to include trailing
    isolated vertices.
    """
    pairs = [(int(u), int(v)) for u, v in edges]
    src = np.array([u for u, _ in pairs], dtype=np.int64)
    dst = np.array([v for _, v in pairs], dtype=np.int64)
    if len(src) and (src.min() < 0 or dst.min() < 0):
        raise ValueError("vertex ids must be non-negative")
    keep = src != dst
    src, dst = src[keep], dst[keep]
    n_seen = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1)
    n = n_seen if n_vertices is None else int(n_vertices)
    if n < n_seen:
        raise ValueError(f"n_vertices={n} but edge list references vertex {n_seen - 1}")
    if len(src):
        key = src * np.int64(n) + dst
        _, first = np.unique(key, return_index=True)
        src, dst = src[first], dst[first]
    order = np.lexsort((dst, src))
    out_indptr, out_indices = _csr_from_sorted(src[order], dst[order], n)
    order_in = np.lexsort((src, dst))
    in_indptr, in_indices = _csr_from_sorted(dst[order_in], src[order_in], n)
    return DiGraph(out_indptr, out_indices, in_indptr, in_indices, name=name)


def random_digraph(n: int, p: float, seed=None, name: str = "") -> DiGraph:
    """Directed Erdős–Rényi: each ordered pair (u, v), u ≠ v, is an arc
    independently with probability ``p``."""
    if not 0 <= p <= 1:
        raise ValueError(f"probability p={p} out of [0, 1]")
    rng = np.random.default_rng(seed)
    mask = rng.random((n, n)) < p
    np.fill_diagonal(mask, False)
    src, dst = np.nonzero(mask)
    return digraph_from_edges(
        zip(src.tolist(), dst.tolist()), n_vertices=n, name=name or f"gnp-d({n},{p})"
    )


def price_citation_graph(
    n: int, out_degree: int = 3, seed=None, name: str = ""
) -> DiGraph:
    """Price's preferential-attachment citation model.

    Vertex t arrives with ``out_degree`` arcs pointing to earlier
    vertices, chosen proportionally to (in-degree + 1).  Produces the
    skewed in-degree distribution of citation/follower networks — the
    directed analogue of the power-law data graphs in Table I, and the
    data generator behind the directed example.
    """
    if n < 2:
        raise ValueError("need at least 2 vertices")
    rng = np.random.default_rng(seed)
    edges: list[tuple[int, int]] = []
    indeg = np.zeros(n, dtype=np.float64)
    for t in range(1, n):
        k = min(out_degree, t)
        weights = indeg[:t] + 1.0
        targets = rng.choice(t, size=k, replace=False, p=weights / weights.sum())
        for v in targets:
            edges.append((t, int(v)))
            indeg[v] += 1
    return digraph_from_edges(edges, n_vertices=n, name=name or f"price({n},{out_degree})")
