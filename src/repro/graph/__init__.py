"""Graph substrate: CSR storage, set algebra, generators, datasets, stats.

This package is the data-graph half of the system: everything the
matching engine needs from the input graph lives here, with no knowledge
of patterns or schedules.
"""

from repro.graph.csr import Graph
from repro.graph.builder import (
    GraphBuilder,
    build_graph_arrays,
    graph_from_adjacency_matrix,
    graph_from_edges,
)
from repro.graph.generators import (
    barabasi_albert,
    chung_lu,
    complete_graph,
    empty_graph,
    erdos_renyi,
    random_power_law,
    watts_strogatz,
)
from repro.graph.io import (
    load_binary,
    load_edge_list,
    load_or_build,
    save_binary,
    save_edge_list,
)
from repro.graph.stats import (
    GraphStats,
    degree_histogram,
    global_clustering,
    triangle_count,
    wedge_count,
)
from repro.graph.labeled import LabeledGraph, assign_random_labels
from repro.graph.datasets import (
    DATASETS,
    SINGLE_NODE_DATASETS,
    dataset_names,
    load_dataset,
)

__all__ = [
    "LabeledGraph",
    "assign_random_labels",
    "Graph",
    "GraphBuilder",
    "build_graph_arrays",
    "graph_from_adjacency_matrix",
    "graph_from_edges",
    "barabasi_albert",
    "chung_lu",
    "complete_graph",
    "empty_graph",
    "erdos_renyi",
    "random_power_law",
    "watts_strogatz",
    "load_binary",
    "load_edge_list",
    "load_or_build",
    "save_binary",
    "save_edge_list",
    "GraphStats",
    "degree_histogram",
    "global_clustering",
    "triangle_count",
    "wedge_count",
    "DATASETS",
    "SINGLE_NODE_DATASETS",
    "dataset_names",
    "load_dataset",
]
