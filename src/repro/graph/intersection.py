"""Sorted-array set algebra — the inner kernel of pattern matching.

GraphPi stores adjacency in CSR with sorted neighbour lists so that the
intersection of two candidate sets costs O(n + m) (paper §IV-E).  In this
reproduction the candidate sets are sorted ``numpy`` int arrays and we
provide three interchangeable kernels:

* ``intersect_merge``      — classic two-pointer merge, O(n + m), pure
  Python loop (reference implementation; used for testing and ablation).
* ``intersect_searchsorted`` — vectorised binary search of the smaller
  array into the larger, O(n log m); this is the NumPy-friendly kernel and
  the default for unequal sizes.
* ``intersect_galloping``  — exponential search from the small side,
  O(n log(m/n)); wins when one side is tiny.

``intersect`` picks a kernel adaptively.  All kernels require *strictly
increasing* inputs (CSR guarantees this) and return a sorted array.

Restrictions (``id(u) > id(v)``) become *range bounds* on sorted arrays:
``bounded_slice`` resolves a (lower, upper) window with binary search,
which generalises the paper's ``break`` statement (a ``break`` is exactly
an upper bound on an ascending stream).
"""

from __future__ import annotations

import numpy as np

#: dtype used for vertex ids throughout the repository.
VERTEX_DTYPE = np.int64

_EMPTY = np.empty(0, dtype=VERTEX_DTYPE)


def empty_vertex_array() -> np.ndarray:
    """A shared zero-length vertex array (callers must not mutate it)."""
    return _EMPTY


def intersect_merge(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Two-pointer merge intersection of strictly increasing arrays.

    Pure-Python loop: O(n + m) element visits.  Kept as the semantic
    reference for the vectorised kernels and for the intersection-kernel
    ablation benchmark.
    """
    i = j = 0
    n, m = len(a), len(b)
    out = []
    while i < n and j < m:
        x, y = a[i], b[j]
        if x == y:
            out.append(x)
            i += 1
            j += 1
        elif x < y:
            i += 1
        else:
            j += 1
    return np.asarray(out, dtype=VERTEX_DTYPE)


def intersect_searchsorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vectorised intersection: binary-search the smaller into the larger."""
    if len(a) > len(b):
        a, b = b, a
    if len(a) == 0 or len(b) == 0:
        return _EMPTY
    pos = np.searchsorted(b, a)
    pos[pos == len(b)] = len(b) - 1
    return a[b[pos] == a]


def intersect_galloping(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Galloping (exponential-search) intersection from the smaller side.

    For each element of the small array we gallop forward in the large
    array; the cursor never moves backwards, so the cost is
    O(n log(m/n)) comparisons.
    """
    if len(a) > len(b):
        a, b = b, a
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        return _EMPTY
    out = []
    lo = 0
    for x in a:
        # Gallop: double the step until b[lo + step] >= x.
        step = 1
        hi = lo
        while hi < m and b[hi] < x:
            lo = hi
            hi += step
            step <<= 1
        hi = min(hi, m)
        # Binary search in (lo, hi].
        idx = lo + int(np.searchsorted(b[lo:hi], x))
        if idx < m and b[idx] == x:
            out.append(x)
            lo = idx + 1
        else:
            lo = idx
        if lo >= m:
            break
    return np.asarray(out, dtype=VERTEX_DTYPE)


#: if the size ratio exceeds this, searchsorted beats merge decisively.
_ADAPTIVE_RATIO = 8


def intersect(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Adaptive intersection of two strictly increasing vertex arrays."""
    la, lb = len(a), len(b)
    if la == 0 or lb == 0:
        return _EMPTY
    return intersect_searchsorted(a, b)


def intersect_many(arrays: list[np.ndarray]) -> np.ndarray:
    """Intersect several sorted arrays, smallest-first to shrink fast."""
    if not arrays:
        raise ValueError("intersect_many requires at least one array")
    ordered = sorted(arrays, key=len)
    acc = ordered[0]
    for arr in ordered[1:]:
        if len(acc) == 0:
            return _EMPTY
        acc = intersect(acc, arr)
    return acc


def intersect_count(a: np.ndarray, b: np.ndarray) -> int:
    """|a ∩ b| without materialising the intersection."""
    if len(a) > len(b):
        a, b = b, a
    if len(a) == 0 or len(b) == 0:
        return 0
    pos = np.searchsorted(b, a)
    pos[pos == len(b)] = len(b) - 1
    return int(np.count_nonzero(b[pos] == a))


def difference(a: np.ndarray, exclude: np.ndarray) -> np.ndarray:
    """a \\ exclude for strictly increasing ``a`` (``exclude`` unsorted ok)."""
    if len(a) == 0 or len(exclude) == 0:
        return a
    mask = np.isin(a, exclude, invert=True, assume_unique=False)
    return a[mask]


def contains(a: np.ndarray, value: int) -> bool:
    """Membership test on a strictly increasing array (binary search)."""
    idx = int(np.searchsorted(a, value))
    return idx < len(a) and a[idx] == value


def count_members(a: np.ndarray, values) -> int:
    """How many of ``values`` occur in strictly increasing array ``a``."""
    cnt = 0
    for v in values:
        if contains(a, v):
            cnt += 1
    return cnt


def bounded_slice(a: np.ndarray, lower: int | None, upper: int | None) -> np.ndarray:
    """Restrict a strictly increasing array to the open interval (lower, upper).

    ``lower``/``upper`` of ``None`` mean unbounded.  This is how restriction
    checks are executed: a restriction ``id(u) > id(current)`` with ``u``
    already bound to data vertex ``x`` restricts the current candidate
    stream to values ``< x`` — i.e. ``upper = x``; symmetrically a
    restriction ``id(current) > id(v)`` sets ``lower``.  On the sorted
    candidate array both become O(log n) binary searches, subsuming the
    paper's ``break`` statement.
    """
    lo_idx = 0 if lower is None else int(np.searchsorted(a, lower, side="right"))
    hi_idx = len(a) if upper is None else int(np.searchsorted(a, upper, side="left"))
    if lo_idx >= hi_idx:
        return _EMPTY
    return a[lo_idx:hi_idx]


def bounded_count(a: np.ndarray, lower: int | None, upper: int | None) -> int:
    """len(bounded_slice(a, lower, upper)) without slicing."""
    lo_idx = 0 if lower is None else int(np.searchsorted(a, lower, side="right"))
    hi_idx = len(a) if upper is None else int(np.searchsorted(a, upper, side="left"))
    return max(0, hi_idx - lo_idx)


# ---------------------------------------------------------------------------
# bulk (frontier) primitives
# ---------------------------------------------------------------------------
# The vectorised execution backend (:mod:`repro.core.vectorised`) operates
# on whole candidate frontiers at once.  Its inner kernels live here with
# the scalar set algebra because they share the same invariant — CSR rows
# are strictly increasing — and the same correctness obligations.


def gather_ranges(
    values: np.ndarray, starts: np.ndarray, counts: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate ``values[starts[i] : starts[i] + counts[i]]`` for all i.

    Returns ``(owner, out)`` where ``owner[j]`` is the range index that
    produced ``out[j]``.  The workhorse of frontier extension: one gather
    replaces ``len(starts)`` Python-level slice calls.
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    owner = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    if total == 0:
        return owner, _EMPTY
    # Per-element source index: a global ramp shifted, per range, from
    # the range's position in the output to its position in ``values``.
    shift = np.repeat(
        np.asarray(starts, dtype=np.int64) - (np.cumsum(counts) - counts), counts
    )
    return owner, values[np.arange(total, dtype=np.int64) + shift]


def gather_csr_rows(
    indptr: np.ndarray, indices: np.ndarray, vertices: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate the CSR rows of ``vertices``, tagged with their owner.

    Returns ``(owner, values)`` where ``values`` is the concatenation of
    ``indices[indptr[v]:indptr[v+1]]`` for each ``v`` in ``vertices`` (in
    order) and ``owner[i]`` is the position in ``vertices`` whose row
    produced ``values[i]`` — the bulk form of ``graph.neighbors``.
    """
    vertices = np.asarray(vertices, dtype=VERTEX_DTYPE)
    starts = indptr[vertices]
    return gather_ranges(indices, starts, indptr[vertices + 1] - starts)


def sorted_edge_keys(indptr: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Every directed CSR entry ``(u, v)`` encoded as ``u * n + v``, sorted.

    Rows are stored in vertex order and are strictly increasing inside,
    so the key array is strictly increasing by construction — ready for
    :func:`bulk_contains_sorted` without an explicit sort.
    """
    n = len(indptr) - 1
    row_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    return row_of * n + indices


def bulk_contains_sorted(haystack: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Vectorised membership of ``keys`` in a strictly increasing array.

    The bulk form of :func:`contains`: one ``searchsorted`` answers every
    query at once.  With ``haystack`` = :func:`sorted_edge_keys` output
    and ``keys = u * n + v`` this is a batched ``has_edge`` — the
    mechanism the vectorised backend uses to intersect a whole frontier's
    candidates against a second bound vertex's neighbourhood.
    """
    keys = np.asarray(keys)
    if len(haystack) == 0 or len(keys) == 0:
        return np.zeros(len(keys), dtype=bool)
    pos = np.searchsorted(haystack, keys)
    pos[pos == len(haystack)] = len(haystack) - 1
    return haystack[pos] == keys


KERNELS = {
    "merge": intersect_merge,
    "searchsorted": intersect_searchsorted,
    "galloping": intersect_galloping,
    "adaptive": intersect,
}
