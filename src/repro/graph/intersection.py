"""Sorted-array set algebra — the inner kernel of pattern matching.

GraphPi stores adjacency in CSR with sorted neighbour lists so that the
intersection of two candidate sets costs O(n + m) (paper §IV-E).  In this
reproduction the candidate sets are sorted ``numpy`` int arrays and we
provide three interchangeable kernels:

* ``intersect_merge``      — classic two-pointer merge, O(n + m), pure
  Python loop (reference implementation; used for testing and ablation).
* ``intersect_searchsorted`` — vectorised binary search of the smaller
  array into the larger, O(n log m); this is the NumPy-friendly kernel and
  the default for unequal sizes.
* ``intersect_galloping``  — exponential search from the small side,
  O(n log(m/n)); wins only when the whole job is a few probes into a
  small row, where NumPy's fixed call overhead dominates.

``intersect`` picks a kernel adaptively.  All kernels require *strictly
increasing* inputs (CSR guarantees this) and return a sorted array.

Restrictions (``id(u) > id(v)``) become *range bounds* on sorted arrays:
``bounded_slice`` resolves a (lower, upper) window with binary search,
which generalises the paper's ``break`` statement (a ``break`` is exactly
an upper bound on an ascending stream).
"""

from __future__ import annotations

import numpy as np

#: dtype used for vertex ids throughout the repository.
VERTEX_DTYPE = np.int64

_EMPTY = np.empty(0, dtype=VERTEX_DTYPE)


def empty_vertex_array() -> np.ndarray:
    """A shared zero-length vertex array (callers must not mutate it)."""
    return _EMPTY


def intersect_merge(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Two-pointer merge intersection of strictly increasing arrays.

    Pure-Python loop: O(n + m) element visits.  Kept as the semantic
    reference for the vectorised kernels and for the intersection-kernel
    ablation benchmark.
    """
    i = j = 0
    n, m = len(a), len(b)
    out = []
    while i < n and j < m:
        x, y = a[i], b[j]
        if x == y:
            out.append(x)
            i += 1
            j += 1
        elif x < y:
            i += 1
        else:
            j += 1
    return np.asarray(out, dtype=VERTEX_DTYPE)


def intersect_searchsorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vectorised intersection: binary-search the smaller into the larger."""
    if len(a) > len(b):
        a, b = b, a
    if len(a) == 0 or len(b) == 0:
        return _EMPTY
    pos = np.searchsorted(b, a)
    pos[pos == len(b)] = len(b) - 1
    return a[b[pos] == a]


def intersect_galloping(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Galloping (exponential-search) intersection from the smaller side.

    For each element of the small array we gallop forward in the large
    array; the cursor never moves backwards, so the cost is
    O(n log(m/n)) comparisons.
    """
    if len(a) > len(b):
        a, b = b, a
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        return _EMPTY
    out = []
    lo = 0
    probe = b.item  # unboxed scalar reads: ~5x cheaper than b[i]
    for x in a.tolist():
        # Gallop: double the step until b[lo + step] >= x.
        step = 1
        hi = lo
        while hi < m and probe(hi) < x:
            lo = hi
            hi += step
            step <<= 1
        if hi > m:
            hi = m
        # Binary search in (lo, hi].
        while lo < hi:
            mid = (lo + hi) >> 1
            if probe(mid) < x:
                lo = mid + 1
            else:
                hi = mid
        if lo < m and probe(lo) == x:
            out.append(x)
            lo += 1
        if lo >= m:
            break
    return np.asarray(out, dtype=VERTEX_DTYPE)


#: gallop only when the large side is at least this many times the small
#: side — below that, one vectorised ``searchsorted`` of the whole small
#: array beats the per-element Python gallop loop.
GALLOP_RATIO = 32

#: ... and only when the large side is small in *absolute* terms: the
#: gallop loop's win is avoiding ~3.5 µs of fixed NumPy call overhead,
#: which only covers ~2 * small * log2(large) interpreted probes while
#: the large side stays a few hundred elements.  Past that, the C-level
#: binary search always wins however extreme the ratio (the tiny/huge
#: row of ``benchmarks/bench_ablation_intersection.py`` documents this).
GALLOP_MAX_LARGE = 512

#: ... and only when the small side is at most this long: the gallop
#: kernel pays Python-loop overhead *per element* of the small array.
#: Measured against a few-hundred-element row, a single probe wins
#: ~1.5x; two probes already break even at best (see
#: ``benchmarks/bench_ablation_intersection.py``).
GALLOP_MAX_SMALL = 1


def intersect(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Adaptive intersection of two strictly increasing vertex arrays.

    Dispatches on measured crossovers, not asymptotics: the galloping
    kernel wins only where the whole job is a handful of interpreted
    probes — ``small <= GALLOP_MAX_SMALL`` probes into a row of at most
    ``GALLOP_MAX_LARGE`` elements, with the ``GALLOP_RATIO`` imbalance
    that makes per-element search worthwhile at all.  There it skips
    the ~3.5 µs of fixed call overhead the vectorised path pays (a hot
    case: an ``intersect_many`` accumulator shrunk to a single vertex
    against an adjacency row).  Everything else takes the vectorised
    binary search, whose whole-array ``searchsorted`` amortises away
    the Python-level per-element cost that dominates the gallop loop.
    """
    la, lb = len(a), len(b)
    if la == 0 or lb == 0:
        return _EMPTY
    small, large = (la, lb) if la <= lb else (lb, la)
    if (
        small <= GALLOP_MAX_SMALL
        and large <= GALLOP_MAX_LARGE
        and large > small * GALLOP_RATIO
    ):
        return intersect_galloping(a, b)
    return intersect_searchsorted(a, b)


def intersect_many(arrays: list[np.ndarray]) -> np.ndarray:
    """Intersect several sorted arrays, smallest-first to shrink fast."""
    if not arrays:
        raise ValueError("intersect_many requires at least one array")
    ordered = sorted(arrays, key=len)
    acc = ordered[0]
    for arr in ordered[1:]:
        if len(acc) == 0:
            return _EMPTY
        acc = intersect(acc, arr)
    return acc


def intersect_count(a: np.ndarray, b: np.ndarray) -> int:
    """|a ∩ b| without materialising the intersection."""
    if len(a) > len(b):
        a, b = b, a
    if len(a) == 0 or len(b) == 0:
        return 0
    pos = np.searchsorted(b, a)
    pos[pos == len(b)] = len(b) - 1
    return int(np.count_nonzero(b[pos] == a))


def difference(a: np.ndarray, exclude: np.ndarray) -> np.ndarray:
    """a \\ exclude for strictly increasing ``a`` (``exclude`` unsorted ok)."""
    if len(a) == 0 or len(exclude) == 0:
        return a
    mask = np.isin(a, exclude, invert=True, assume_unique=False)
    return a[mask]


def contains(a: np.ndarray, value: int) -> bool:
    """Membership test on a strictly increasing array (binary search)."""
    idx = int(np.searchsorted(a, value))
    return idx < len(a) and a[idx] == value


def count_members(a: np.ndarray, values) -> int:
    """How many of ``values`` occur in strictly increasing array ``a``."""
    cnt = 0
    for v in values:
        if contains(a, v):
            cnt += 1
    return cnt


def bounded_slice(a: np.ndarray, lower: int | None, upper: int | None) -> np.ndarray:
    """Restrict a strictly increasing array to the open interval (lower, upper).

    ``lower``/``upper`` of ``None`` mean unbounded.  This is how restriction
    checks are executed: a restriction ``id(u) > id(current)`` with ``u``
    already bound to data vertex ``x`` restricts the current candidate
    stream to values ``< x`` — i.e. ``upper = x``; symmetrically a
    restriction ``id(current) > id(v)`` sets ``lower``.  On the sorted
    candidate array both become O(log n) binary searches, subsuming the
    paper's ``break`` statement.
    """
    lo_idx = 0 if lower is None else int(np.searchsorted(a, lower, side="right"))
    hi_idx = len(a) if upper is None else int(np.searchsorted(a, upper, side="left"))
    if lo_idx >= hi_idx:
        return _EMPTY
    return a[lo_idx:hi_idx]


def bounded_count(a: np.ndarray, lower: int | None, upper: int | None) -> int:
    """len(bounded_slice(a, lower, upper)) without slicing."""
    lo_idx = 0 if lower is None else int(np.searchsorted(a, lower, side="right"))
    hi_idx = len(a) if upper is None else int(np.searchsorted(a, upper, side="left"))
    return max(0, hi_idx - lo_idx)


# ---------------------------------------------------------------------------
# bulk (frontier) primitives
# ---------------------------------------------------------------------------
# The vectorised execution backend (:mod:`repro.core.vectorised`) operates
# on whole candidate frontiers at once.  Its inner kernels live here with
# the scalar set algebra because they share the same invariant — CSR rows
# are strictly increasing — and the same correctness obligations.


def gather_ranges(
    values: np.ndarray, starts: np.ndarray, counts: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate ``values[starts[i] : starts[i] + counts[i]]`` for all i.

    Returns ``(owner, out)`` where ``owner[j]`` is the range index that
    produced ``out[j]``.  The workhorse of frontier extension: one gather
    replaces ``len(starts)`` Python-level slice calls.
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    owner = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    if total == 0:
        return owner, _EMPTY
    # Per-element source index: a global ramp shifted, per range, from
    # the range's position in the output to its position in ``values``.
    shift = np.repeat(
        np.asarray(starts, dtype=np.int64) - (np.cumsum(counts) - counts), counts
    )
    return owner, values[np.arange(total, dtype=np.int64) + shift]


def gather_csr_rows(
    indptr: np.ndarray, indices: np.ndarray, vertices: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate the CSR rows of ``vertices``, tagged with their owner.

    Returns ``(owner, values)`` where ``values`` is the concatenation of
    ``indices[indptr[v]:indptr[v+1]]`` for each ``v`` in ``vertices`` (in
    order) and ``owner[i]`` is the position in ``vertices`` whose row
    produced ``values[i]`` — the bulk form of ``graph.neighbors``.
    """
    vertices = np.asarray(vertices, dtype=VERTEX_DTYPE)
    starts = indptr[vertices]
    return gather_ranges(indices, starts, indptr[vertices + 1] - starts)


def sorted_edge_keys(indptr: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Every directed CSR entry ``(u, v)`` encoded as ``u * n + v``, sorted.

    Rows are stored in vertex order and are strictly increasing inside,
    so the key array is strictly increasing by construction — ready for
    :func:`bulk_contains_sorted` without an explicit sort.
    """
    n = len(indptr) - 1
    row_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    return row_of * n + indices


def bulk_contains_sorted(haystack: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Vectorised membership of ``keys`` in a strictly increasing array.

    The bulk form of :func:`contains`: one ``searchsorted`` answers every
    query at once.  With ``haystack`` = :func:`sorted_edge_keys` output
    and ``keys = u * n + v`` this is a batched ``has_edge`` — the
    mechanism the vectorised backend uses to intersect a whole frontier's
    candidates against a second bound vertex's neighbourhood.
    """
    keys = np.asarray(keys)
    if len(haystack) == 0 or len(keys) == 0:
        return np.zeros(len(keys), dtype=bool)
    pos = np.searchsorted(haystack, keys)
    pos[pos == len(haystack)] = len(haystack) - 1
    return haystack[pos] == keys


# ---------------------------------------------------------------------------
# scratch-CSR primitives (auxiliary-graph pruning)
# ---------------------------------------------------------------------------
# The frontier engine's auxiliary graphs are *scratch CSR* structures:
# one pruned candidate row per distinct matching prefix, stored as
# ``(indptr, values, keys)`` where ``keys = row_id * n + value`` is
# globally strictly increasing (row blocks are laid out in row-id order
# and rows are sorted inside) — the same keyed layout as
# :func:`sorted_edge_keys`, so per-row restriction windows resolve with
# the same two ``searchsorted`` calls.


def bulk_intersect_rows(
    indptr: np.ndarray,
    indices: np.ndarray,
    edge_keys: np.ndarray,
    vertex_cols: np.ndarray,
    n_vertices: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Multi-row intersection: one ``∩ of CSR rows`` per input row.

    ``vertex_cols`` has shape ``(R, k)``; output row ``i`` is the sorted
    intersection of the CSR rows of ``vertex_cols[i]`` — the bulk form
    of :func:`intersect_many` over the whole batch at once.  The column
    with the smallest total degree pivots (its rows are gathered), the
    others become batched edge-key membership masks.  Returns the
    scratch CSR ``(scratch_indptr, values, keys)``.
    """
    vertex_cols = np.asarray(vertex_cols, dtype=VERTEX_DTYPE)
    rows, k = vertex_cols.shape
    if rows == 0:
        z = np.zeros(1, dtype=np.int64)
        return z, _EMPTY, _EMPTY
    row_sizes = indptr[vertex_cols + 1] - indptr[vertex_cols]
    pivot = int(np.argmin(row_sizes.sum(axis=0)))
    owner, values = gather_csr_rows(indptr, indices, vertex_cols[:, pivot])
    mask = np.ones(len(values), dtype=bool)
    for c in range(k):
        if c != pivot:
            mask &= bulk_contains_sorted(
                edge_keys, vertex_cols[owner, c] * n_vertices + values
            )
    owner, values = owner[mask], values[mask]
    scratch_indptr = np.zeros(rows + 1, dtype=np.int64)
    np.cumsum(np.bincount(owner, minlength=rows), out=scratch_indptr[1:])
    return scratch_indptr, values, owner * n_vertices + values


def refine_scratch_rows(
    scratch_indptr: np.ndarray,
    scratch_values: np.ndarray,
    rows: np.ndarray,
    edge_keys: np.ndarray,
    new_cols: np.ndarray,
    n_vertices: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Bulk intersect-into-scratch: narrow selected scratch rows further.

    Output row ``i`` is scratch row ``rows[i]`` intersected with the
    neighbourhoods of ``new_cols[i]`` (shape ``(R, m)``) — how a pruned
    auxiliary row chains into the next depth's even smaller row without
    ever touching the full CSR rows again.  Returns a new scratch CSR
    ``(indptr, values, keys)`` with one row per entry of ``rows``.
    """
    rows = np.asarray(rows, dtype=np.int64)
    new_cols = np.asarray(new_cols, dtype=VERTEX_DTYPE)
    if len(rows) == 0:
        z = np.zeros(1, dtype=np.int64)
        return z, _EMPTY, _EMPTY
    starts = scratch_indptr[rows]
    owner, values = gather_ranges(
        scratch_values, starts, scratch_indptr[rows + 1] - starts
    )
    mask = np.ones(len(values), dtype=bool)
    for c in range(new_cols.shape[1]):
        mask &= bulk_contains_sorted(
            edge_keys, new_cols[owner, c] * n_vertices + values
        )
    owner, values = owner[mask], values[mask]
    out_indptr = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum(np.bincount(owner, minlength=len(rows)), out=out_indptr[1:])
    return out_indptr, values, owner * n_vertices + values


KERNELS = {
    "merge": intersect_merge,
    "searchsorted": intersect_searchsorted,
    "galloping": intersect_galloping,
    "adaptive": intersect,
}
