"""Seeded synthetic graph generators.

The evaluation graphs of the paper (Table I) are real SNAP datasets we
cannot ship; ``repro.graph.datasets`` builds scaled-down *proxies* out of
the generators here.  Everything is NumPy-vectorised and deterministic
given a seed.

Generators:

* ``erdos_renyi``      — G(n, p) via geometric edge skipping (O(E)).
* ``barabasi_albert``  — preferential attachment; power-law degrees.
* ``chung_lu``         — expected-degree model; lets us dial in an exact
  degree-skew profile (used for the social-network proxies).
* ``watts_strogatz``   — ring lattice + rewiring; high clustering
  (used for the Patents/citation proxy where triangles abound).
* ``complete_graph``   — K_n (the restriction-set validator uses it).
* ``random_power_law`` — Chung–Lu with Zipf weights; one-knob skew.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builder import build_graph_arrays
from repro.graph.csr import Graph
from repro.graph.intersection import VERTEX_DTYPE
from repro.utils.rng import make_rng
from repro.utils.validation import check_positive, check_probability


def complete_graph(n: int, name: str = "") -> Graph:
    """K_n — every pair of distinct vertices is adjacent."""
    check_positive(n, "n")
    indptr = np.arange(0, n * n, n - 1, dtype=np.int64) if n > 1 else np.zeros(2, np.int64)
    indptr = np.arange(n + 1, dtype=np.int64) * (n - 1)
    rows = []
    base = np.arange(n, dtype=VERTEX_DTYPE)
    for v in range(n):
        rows.append(np.delete(base, v))
    indices = np.concatenate(rows) if n > 1 else np.empty(0, dtype=VERTEX_DTYPE)
    return Graph(indptr, indices, name=name or f"K{n}")


def empty_graph(n: int, name: str = "") -> Graph:
    """n isolated vertices (edgeless)."""
    check_positive(n, "n", strict=False)
    return Graph(np.zeros(n + 1, dtype=np.int64), np.empty(0, dtype=VERTEX_DTYPE), name=name)


def erdos_renyi(n: int, p: float, seed=None, name: str = "") -> Graph:
    """G(n, p) random graph.

    Samples the (n choose 2) possible edges with geometric gap skipping,
    so the cost is O(#edges) not O(n^2).
    """
    check_positive(n, "n")
    check_probability(p, "p")
    rng = make_rng(seed)
    total_pairs = n * (n - 1) // 2
    if p == 0.0 or total_pairs == 0:
        return empty_graph(n, name=name or f"ER({n},{p})")
    if p == 1.0:
        return complete_graph(n, name=name or f"ER({n},1)")
    # Geometric skipping over the linearised upper-triangle index space.
    picks = []
    idx = -1
    log1p = np.log1p(-p)
    while True:
        # Draw batch of geometric gaps for speed.
        gaps = np.floor(np.log1p(-rng.random(4096)) / log1p).astype(np.int64) + 1
        for g in gaps:
            idx += int(g)
            if idx >= total_pairs:
                break
            picks.append(idx)
        if idx >= total_pairs:
            break
    if not picks:
        return empty_graph(n, name=name or f"ER({n},{p})")
    lin = np.asarray(picks, dtype=np.int64)
    # Invert the linear index: u is the largest row with offset(u) <= lin.
    # offset(u) = u*n - u*(u+1)/2 for pairs (u, v) with v > u.
    u = np.empty(len(lin), dtype=np.int64)
    lo = np.zeros(len(lin), dtype=np.int64)
    hi = np.full(len(lin), n - 1, dtype=np.int64)
    while np.any(lo < hi):
        mid = (lo + hi + 1) // 2
        offset = mid * n - mid * (mid + 1) // 2
        go_up = offset <= lin
        lo = np.where(go_up, mid, lo)
        hi = np.where(go_up, hi, mid - 1)
    u = lo
    offset = u * n - u * (u + 1) // 2
    v = lin - offset + u + 1
    graph, _ = build_graph_arrays(u, v, compact_ids=False, name=name or f"ER({n},{p})")
    return _pad_isolated(graph, n)


def barabasi_albert(n: int, m: int, seed=None, name: str = "") -> Graph:
    """Preferential attachment: each new vertex attaches to ``m`` targets.

    Produces the heavy-tailed degree distribution typical of the social
    graphs in Table I (LiveJournal, Orkut, Twitter).
    """
    check_positive(n, "n")
    check_positive(m, "m")
    if m >= n:
        raise ValueError(f"m={m} must be < n={n}")
    rng = make_rng(seed)
    src: list[int] = []
    dst: list[int] = []
    # repeated_nodes implements roulette-wheel selection by degree.
    repeated: list[int] = list(range(m))
    for new in range(m, n):
        targets: set[int] = set()
        while len(targets) < m:
            pick = repeated[rng.integers(0, len(repeated))] if repeated else int(
                rng.integers(0, new)
            )
            targets.add(int(pick))
        for t in targets:
            src.append(new)
            dst.append(t)
            repeated.append(t)
        repeated.extend([new] * m)
    graph, _ = build_graph_arrays(
        np.asarray(src, dtype=VERTEX_DTYPE),
        np.asarray(dst, dtype=VERTEX_DTYPE),
        compact_ids=False,
        name=name or f"BA({n},{m})",
    )
    return _pad_isolated(graph, n)


def chung_lu(weights: np.ndarray, seed=None, name: str = "") -> Graph:
    """Chung–Lu expected-degree random graph.

    Edge {u, v} appears with probability ``min(1, w_u w_v / W)``.  Uses
    the standard O(E) sampling by sorted weights.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1 or len(weights) == 0:
        raise ValueError("weights must be a non-empty 1-D array")
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    rng = make_rng(seed)
    n = len(weights)
    order = np.argsort(-weights, kind="stable")
    w = weights[order]
    total = w.sum()
    src: list[int] = []
    dst: list[int] = []
    if total <= 0:
        return empty_graph(n, name=name)
    for i in range(n - 1):
        if w[i] == 0:
            break
        j = i + 1
        p = min(1.0, w[i] * w[j] / total) if j < n else 0.0
        while j < n:
            if p < 1.0 and p > 0.0:
                # Geometric skip to next candidate.
                skip = int(np.floor(np.log(rng.random()) / np.log1p(-p)))
                j += skip
            if j >= n:
                break
            q = min(1.0, w[i] * w[j] / total)
            if p <= 0.0:
                break
            if rng.random() < q / p:
                src.append(int(order[i]))
                dst.append(int(order[j]))
            p = q
            j += 1
    graph, _ = build_graph_arrays(
        np.asarray(src, dtype=VERTEX_DTYPE),
        np.asarray(dst, dtype=VERTEX_DTYPE),
        compact_ids=False,
        name=name or f"ChungLu(n={n})",
    )
    return _pad_isolated(graph, n)


def random_power_law(
    n: int,
    avg_degree: float,
    exponent: float = 2.5,
    seed=None,
    name: str = "",
) -> Graph:
    """Chung–Lu graph with Zipf-like weights w_i ∝ i^(-1/(exponent-1)).

    ``avg_degree`` scales the weights so the expected mean degree matches.
    """
    check_positive(n, "n")
    check_positive(avg_degree, "avg_degree")
    if exponent <= 1.0:
        raise ValueError("power-law exponent must be > 1")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    w = ranks ** (-1.0 / (exponent - 1.0))
    w *= avg_degree * n / w.sum()
    # Cap weights to avoid p > 1 saturation distorting the mean.
    cap = np.sqrt(w.sum())
    np.minimum(w, cap, out=w)
    rng = make_rng(seed)
    perm = rng.permutation(n)  # decouple vertex id from weight rank
    return chung_lu(w[perm], seed=rng, name=name or f"PL({n},{avg_degree},{exponent})")


def watts_strogatz(n: int, k: int, beta: float, seed=None, name: str = "") -> Graph:
    """Ring lattice with ``k`` neighbours per side, rewired with prob. beta.

    High clustering coefficient at low beta — a good stand-in for
    citation-style graphs (Patents) where the IEP wins are moderate.
    """
    check_positive(n, "n")
    check_positive(k, "k")
    check_probability(beta, "beta")
    if 2 * k >= n:
        raise ValueError(f"need n > 2k, got n={n}, k={k}")
    rng = make_rng(seed)
    src: list[int] = []
    dst: list[int] = []
    existing: set[tuple[int, int]] = set()

    def put(u: int, v: int) -> bool:
        a, b = (u, v) if u < v else (v, u)
        if a == b or (a, b) in existing:
            return False
        existing.add((a, b))
        return True

    for u in range(n):
        for offset in range(1, k + 1):
            v = (u + offset) % n
            if rng.random() < beta:
                w = int(rng.integers(0, n))
                tries = 0
                while not put(u, w) and tries < 16:
                    w = int(rng.integers(0, n))
                    tries += 1
                if tries >= 16:
                    put(u, v)
            else:
                put(u, v)
    pairs = np.asarray(sorted(existing), dtype=VERTEX_DTYPE)
    graph, _ = build_graph_arrays(
        pairs[:, 0], pairs[:, 1], compact_ids=False, name=name or f"WS({n},{k},{beta})"
    )
    return _pad_isolated(graph, n)


def _pad_isolated(graph: Graph, n: int) -> Graph:
    """Extend ``graph`` with trailing isolated vertices up to ``n``."""
    if graph.n_vertices >= n:
        return graph
    indptr = np.concatenate(
        [graph.indptr, np.full(n - graph.n_vertices, graph.indptr[-1], dtype=np.int64)]
    )
    return Graph(indptr, graph.indices, name=graph.name)


def rmat(
    scale: int,
    edge_factor: int = 8,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed=None,
    name: str = "",
) -> Graph:
    """R-MAT / Kronecker generator (Graph500 parameters by default).

    Recursively drops ``edge_factor * 2^scale`` edges into the adjacency
    matrix: at each of the ``scale`` levels the edge descends into one
    quadrant with probabilities (a, b, c, d = 1-a-b-c).  The default
    (0.57, 0.19, 0.19, 0.05) is the Graph500 standard and yields the
    heavy-tailed, community-free skew typical of follower networks —
    which is what the Twitter-class scalability proxy needs.

    All levels are drawn vectorised (one (E, scale) quadrant matrix),
    then deduplicated through the normal builder pipeline; the returned
    simple graph therefore has at most the requested edge count.
    """
    check_positive(scale, "scale")
    check_positive(edge_factor, "edge_factor")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0 or max(a, b, c, d) > 1:
        raise ValueError(f"R-MAT probabilities must be a partition: a={a} b={b} c={c} d={d:.3f}")
    n = 1 << scale
    n_edges = edge_factor * n
    rng = make_rng(seed)
    # quadrant choice per (edge, level): 0=TL, 1=TR, 2=BL, 3=BR
    quadrants = rng.choice(4, size=(n_edges, scale), p=[a, b, c, d])
    bit_src = (quadrants >> 1) & 1  # BL/BR descend into the lower half (row)
    bit_dst = quadrants & 1  # TR/BR descend into the right half (col)
    weights = (1 << np.arange(scale - 1, -1, -1)).astype(np.int64)
    src = bit_src @ weights
    dst = bit_dst @ weights
    graph, _ = build_graph_arrays(
        src.astype(VERTEX_DTYPE),
        dst.astype(VERTEX_DTYPE),
        compact_ids=False,
        name=name or f"rmat-{scale}",
    )
    if graph.n_vertices < n:
        graph = _pad_isolated(graph, n)
    return graph
