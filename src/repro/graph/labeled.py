"""Vertex-labeled data graphs.

A thin, immutable pairing of a CSR :class:`~repro.graph.csr.Graph` with
one small-integer label per vertex, plus the vectorised label-filtering
primitive the labeled engine needs (slice a sorted candidate array down
to the vertices carrying a wanted label).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import Graph
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class LabeledGraph:
    """An undirected graph whose vertices carry labels."""

    graph: Graph
    labels: np.ndarray

    def __post_init__(self):
        labels = np.ascontiguousarray(self.labels, dtype=np.int64)
        object.__setattr__(self, "labels", labels)
        if labels.ndim != 1 or len(labels) != self.graph.n_vertices:
            raise ValueError(
                f"need one label per vertex: {len(labels)} labels for "
                f"{self.graph.n_vertices} vertices"
            )
        if len(labels) and labels.min() < 0:
            raise ValueError("labels must be non-negative")

    # Delegation of the read API the engine uses.
    @property
    def n_vertices(self) -> int:
        return self.graph.n_vertices

    @property
    def n_edges(self) -> int:
        return self.graph.n_edges

    def neighbors(self, v: int) -> np.ndarray:
        return self.graph.neighbors(v)

    def vertices(self) -> np.ndarray:
        return self.graph.vertices()

    def label_of(self, v: int) -> int:
        return int(self.labels[v])

    def filter_by_label(self, candidates: np.ndarray, label: int) -> np.ndarray:
        """Subset of a sorted candidate array carrying ``label`` (sorted)."""
        if len(candidates) == 0:
            return candidates
        return candidates[self.labels[candidates] == label]

    def vertices_with_label(self, label: int) -> np.ndarray:
        return np.nonzero(self.labels == label)[0].astype(self.graph.indices.dtype)

    def label_histogram(self) -> dict[int, int]:
        values, counts = np.unique(self.labels, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}


def assign_random_labels(graph: Graph, n_labels: int, seed=None,
                         weights=None) -> LabeledGraph:
    """Attach i.i.d. random labels (optionally weighted) to a graph.

    The labeled benchmarks/examples use this to synthesise attribute
    data (e.g. account types on a social graph) with a fixed seed.
    """
    if n_labels < 1:
        raise ValueError("need at least one label")
    rng = make_rng(seed)
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if len(weights) != n_labels or np.any(weights < 0) or weights.sum() <= 0:
            raise ValueError("weights must be non-negative, one per label")
        probs = weights / weights.sum()
        labels = rng.choice(n_labels, size=graph.n_vertices, p=probs)
    else:
        labels = rng.integers(0, n_labels, size=graph.n_vertices)
    return LabeledGraph(graph, labels.astype(np.int64))
