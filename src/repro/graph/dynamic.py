"""Mutable graphs with incrementally-maintained model statistics.

The paper assumes an immutable data graph so that the triangle count
feeding its cardinality estimator is a constant — and adds (§IV-C):
*"Even if the graph is mutable, it is trivial to calculate tri_cnt
incrementally."*  This module makes that sentence concrete:

* :class:`DynamicGraph` — adjacency-set storage with ``add_edge`` /
  ``remove_edge`` / ``add_vertex``, maintaining |E|, the triangle count
  and the max degree incrementally (O(min-degree) per edge update for
  triangles, O(1) amortised for the rest, with max-degree recomputed
  lazily after deletions that lower the previous maximum);
* ``snapshot()`` — freeze into the immutable CSR :class:`Graph` the
  matching engine requires, memoised per mutation :attr:`version` so a
  quiescent graph never pays the O(|V|+|E|) rebuild twice (and the
  session registry keyed by object identity keeps hitting its plan
  cache);
* ``stats()`` — a :class:`GraphStats` built from the incremental
  counters in O(1), so replanning after a batch of updates never
  rescans the graph.

The intended workflow (exercised by the streaming example): mutate,
call ``stats()`` to re-rank configurations cheaply, ``snapshot()`` when
you actually need to match.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.graph.csr import Graph
from repro.graph.intersection import VERTEX_DTYPE
from repro.graph.stats import GraphStats


class DynamicGraph:
    """An undirected multigraph-free mutable graph.

    Vertices are 0..n-1; ``add_vertex`` extends the range.  Self-loops
    and duplicate edges are rejected (matching the CSR invariants), and
    removing a missing edge raises ``KeyError`` — silent idempotent
    updates would let the incremental counters drift.
    """

    def __init__(self, n_vertices: int = 0, edges: Iterable[tuple[int, int]] = ()):
        if n_vertices < 0:
            raise ValueError("n_vertices must be non-negative")
        self._adj: list[set[int]] = [set() for _ in range(n_vertices)]
        self._n_edges = 0
        self._triangles = 0
        self._version = 0
        self._snapshot_cache: tuple[int, str, Graph] | None = None
        # max degree is maintained as an upper bound; recomputed lazily
        # when a deletion might have lowered the true maximum.
        self._max_degree = 0
        self._max_degree_valid = True
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # size accessors
    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        return len(self._adj)

    @property
    def n_edges(self) -> int:
        return self._n_edges

    @property
    def triangles(self) -> int:
        """Distinct triangle count, maintained incrementally."""
        return self._triangles

    @property
    def version(self) -> int:
        """Mutation counter: bumped by every successful structural change.

        Rejected updates (duplicate edge, self-loop, missing deletion)
        leave it untouched, so equal versions guarantee an identical
        graph — the invariant the memoised :meth:`snapshot` and the
        streaming adjacency caches rely on.
        """
        return self._version

    @property
    def max_degree(self) -> int:
        if not self._max_degree_valid:
            self._max_degree = max((len(a) for a in self._adj), default=0)
            self._max_degree_valid = True
        return self._max_degree

    def degree(self, v: int) -> int:
        self._check_vertex(v)
        return len(self._adj[v])

    def neighbors(self, v: int) -> set[int]:
        """A *copy* of v's neighbour set (mutating it cannot corrupt us)."""
        self._check_vertex(v)
        return set(self._adj[v])

    def neighbors_view(self, v: int) -> set[int]:
        """v's live neighbour set, no copy — callers must not mutate it.

        The streaming delta executor intersects neighbourhoods on every
        update; copying each set per probe (what :meth:`neighbors` does
        for safety) would dominate its cost.  Treat the result as
        read-only and do not hold it across mutations.
        """
        self._check_vertex(v)
        return self._adj[v]

    def has_edge(self, u: int, v: int) -> bool:
        self._check_vertex(u)
        self._check_vertex(v)
        return v in self._adj[u]

    def edges(self) -> Iterable[tuple[int, int]]:
        for u in range(self.n_vertices):
            for v in self._adj[u]:
                if u < v:
                    yield u, v

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _mutated(self) -> None:
        """Record a successful structural change (called *after* it)."""
        self._version += 1
        self._snapshot_cache = None

    def add_vertex(self) -> int:
        """Append an isolated vertex; returns its id."""
        self._adj.append(set())
        self._mutated()
        return len(self._adj) - 1

    def add_edge(self, u: int, v: int) -> int:
        """Insert edge {u, v}; returns the number of new triangles closed.

        The triangle delta is |N(u) ∩ N(v)| *before* insertion — every
        common neighbour closes exactly one new triangle.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise ValueError(f"self-loop ({u},{u}) not allowed")
        if v in self._adj[u]:
            raise KeyError(f"edge ({u},{v}) already present")
        a, b = self._adj[u], self._adj[v]
        small, large = (a, b) if len(a) <= len(b) else (b, a)
        closed = sum(1 for w in small if w in large)
        a.add(v)
        b.add(u)
        self._n_edges += 1
        self._triangles += closed
        new_deg = max(len(a), len(b))
        if new_deg > self._max_degree:
            self._max_degree = new_deg
        self._mutated()
        return closed

    def remove_edge(self, u: int, v: int) -> int:
        """Delete edge {u, v}; returns the number of triangles opened."""
        self._check_vertex(u)
        self._check_vertex(v)
        if v not in self._adj[u]:
            raise KeyError(f"edge ({u},{v}) not present")
        a, b = self._adj[u], self._adj[v]
        a.discard(v)
        b.discard(u)
        small, large = (a, b) if len(a) <= len(b) else (b, a)
        opened = sum(1 for w in small if w in large)
        self._n_edges -= 1
        self._triangles -= opened
        if self._max_degree_valid and len(a) + 1 == self._max_degree:
            # the previous maximum may have been this endpoint
            self._max_degree_valid = False
        if self._max_degree_valid and len(b) + 1 == self._max_degree:
            self._max_degree_valid = False
        self._mutated()
        return opened

    # ------------------------------------------------------------------
    # freezing
    # ------------------------------------------------------------------
    def snapshot(self, name: str = "") -> Graph:
        """Freeze into the immutable CSR graph the engine consumes.

        Memoised on :attr:`version`: repeated calls with no intervening
        mutation return the *same* :class:`Graph` object, so downstream
        identity-keyed caches (the per-graph session registry and its
        plan cache) keep hitting.  Any successful mutation invalidates
        the memo; a different ``name`` rebuilds it.
        """
        cached = self._snapshot_cache
        if cached is not None and cached[0] == self._version and cached[1] == name:
            return cached[2]
        n = self.n_vertices
        indptr = np.zeros(n + 1, dtype=np.int64)
        for v in range(n):
            indptr[v + 1] = indptr[v] + len(self._adj[v])
        indices = np.empty(indptr[-1], dtype=VERTEX_DTYPE)
        for v in range(n):
            row = sorted(self._adj[v])
            indices[indptr[v] : indptr[v + 1]] = row
        graph = Graph(indptr, indices, name=name)
        self._snapshot_cache = (self._version, name, graph)
        return graph

    def stats(self) -> GraphStats:
        """O(1) statistics from the incremental counters.

        Identical to ``GraphStats.of(self.snapshot())`` (pinned by the
        property tests) without touching the adjacency structure.
        """
        return GraphStats(
            n_vertices=self.n_vertices,
            n_edges=self._n_edges,
            triangles=self._triangles,
            max_degree=self.max_degree,
        )

    @classmethod
    def from_graph(cls, graph: Graph) -> "DynamicGraph":
        """Thaw an immutable CSR graph."""
        dyn = cls(graph.n_vertices)
        for u in range(graph.n_vertices):
            for v in graph.neighbors(u):
                if u < int(v):
                    dyn.add_edge(u, int(v))
        return dyn

    # ------------------------------------------------------------------
    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < len(self._adj):
            raise IndexError(f"vertex {v} out of range [0, {len(self._adj)})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DynamicGraph({self.n_vertices} vertices, {self._n_edges} edges, "
            f"{self._triangles} triangles)"
        )
