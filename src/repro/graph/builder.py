"""Edge-list → CSR construction pipeline.

Real-world edge lists (e.g. SNAP dumps, which the paper's Table I graphs
come from) are messy: directed duplicates, self-loops, non-contiguous
vertex ids.  ``GraphBuilder`` normalises all of that into the strict CSR
invariants that :class:`repro.graph.csr.Graph` enforces:

* undirected (each edge stored both ways),
* no self-loops,
* no duplicate edges,
* vertex ids compacted to ``0 .. n-1`` (optionally preserving the
  original ids in ``vertex_labels``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.graph.csr import Graph
from repro.graph.intersection import VERTEX_DTYPE


@dataclass
class GraphBuilder:
    """Incremental, deduplicating graph builder.

    >>> b = GraphBuilder()
    >>> b.add_edge(0, 1); b.add_edge(1, 2); b.add_edge(0, 1)  # dup ignored later
    >>> g = b.build()
    >>> (g.n_vertices, g.n_edges)
    (3, 2)
    """

    compact_ids: bool = True
    name: str = ""
    _sources: list[int] = field(default_factory=list)
    _targets: list[int] = field(default_factory=list)

    def add_edge(self, u: int, v: int) -> None:
        self._sources.append(int(u))
        self._targets.append(int(v))

    def add_edges(self, edges: Iterable[tuple[int, int]]) -> None:
        for u, v in edges:
            self.add_edge(u, v)

    @property
    def n_raw_edges(self) -> int:
        return len(self._sources)

    def build(self) -> Graph:
        src = np.asarray(self._sources, dtype=VERTEX_DTYPE)
        dst = np.asarray(self._targets, dtype=VERTEX_DTYPE)
        graph, _labels = build_graph_arrays(src, dst, compact_ids=self.compact_ids, name=self.name)
        return graph

    def build_with_labels(self) -> tuple[Graph, np.ndarray]:
        src = np.asarray(self._sources, dtype=VERTEX_DTYPE)
        dst = np.asarray(self._targets, dtype=VERTEX_DTYPE)
        return build_graph_arrays(src, dst, compact_ids=self.compact_ids, name=self.name)


def build_graph_arrays(
    src: np.ndarray,
    dst: np.ndarray,
    *,
    compact_ids: bool = True,
    name: str = "",
) -> tuple[Graph, np.ndarray]:
    """Vectorised CSR construction from parallel source/target arrays.

    Returns ``(graph, vertex_labels)`` where ``vertex_labels[i]`` is the
    original id of compacted vertex ``i`` (identity when
    ``compact_ids=False``).
    """
    src = np.asarray(src, dtype=VERTEX_DTYPE)
    dst = np.asarray(dst, dtype=VERTEX_DTYPE)
    if src.shape != dst.shape:
        raise ValueError("source and target arrays must have equal length")
    if len(src) and (src.min() < 0 or dst.min() < 0):
        raise ValueError("vertex ids must be non-negative")

    # Drop self-loops.
    keep = src != dst
    src, dst = src[keep], dst[keep]

    if compact_ids:
        labels = np.unique(np.concatenate([src, dst])) if len(src) else np.empty(0, VERTEX_DTYPE)
        src = np.searchsorted(labels, src)
        dst = np.searchsorted(labels, dst)
        n = len(labels)
    else:
        n = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1) if len(src) else 0
        labels = np.arange(n, dtype=VERTEX_DTYPE)

    # Canonicalise to (min, max) then dedup.
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    if len(lo):
        key = lo * np.int64(n) + hi
        _, first = np.unique(key, return_index=True)
        lo, hi = lo[first], hi[first]

    # Symmetrise and sort by (row, col) to get per-row sorted adjacency.
    rows = np.concatenate([lo, hi])
    cols = np.concatenate([hi, lo])
    order = np.lexsort((cols, rows))
    rows, cols = rows[order], cols[order]

    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return Graph(indptr, cols.astype(VERTEX_DTYPE), name=name), labels


def graph_from_edges(edges: Iterable[tuple[int, int]], name: str = "") -> Graph:
    """Convenience one-shot constructor used pervasively in tests."""
    builder = GraphBuilder(name=name)
    builder.add_edges(edges)
    return builder.build()


def graph_from_adjacency_matrix(matrix: np.ndarray, name: str = "") -> Graph:
    """Build a graph from a dense symmetric 0/1 adjacency matrix."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("adjacency matrix must be square")
    if not np.array_equal(matrix, matrix.T):
        raise ValueError("adjacency matrix must be symmetric (undirected graph)")
    src, dst = np.nonzero(np.triu(matrix, k=1))
    builder = GraphBuilder(compact_ids=False, name=name)
    builder.add_edges(zip(src.tolist(), dst.tolist()))
    if len(src) == 0:
        # Graph with isolated vertices only.
        n = matrix.shape[0]
        return Graph(np.zeros(n + 1, dtype=np.int64), np.empty(0, dtype=VERTEX_DTYPE), name=name)
    graph = builder.build()
    if graph.n_vertices < matrix.shape[0]:
        # Preserve isolated trailing vertices.
        n = matrix.shape[0]
        indptr = np.concatenate(
            [graph.indptr, np.full(n - graph.n_vertices, graph.indptr[-1], dtype=np.int64)]
        )
        graph = Graph(indptr, graph.indices, name=name)
    return graph
