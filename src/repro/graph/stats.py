"""Structural graph statistics feeding the performance model.

GraphPi's cost model (§IV-C) needs exactly three numbers from the data
graph: |V|, |E| and the triangle count, from which it derives

* ``p1`` — probability that a random vertex pair is adjacent, and
* ``p2`` — probability that two random neighbours of a vertex are
  adjacent (i.e. that a wedge closes).

``tri_cnt`` in the paper's formulas is the number of *triangle
embeddings* (ordered, as an unrestricted matcher would count them), i.e.
6x the number of distinct triangles; ``GraphStats`` stores the distinct
count and exposes the paper's quantities as properties.

Triangle counting uses ``A @ A ∘ A`` over ``scipy.sparse`` when available
(fast, vectorised) and falls back to per-edge sorted intersections.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import Graph
from repro.graph.intersection import intersect_count

try:  # scipy is an optional accelerator, not a hard dependency
    import scipy.sparse as _sp
except Exception:  # pragma: no cover - scipy is present in the test env
    _sp = None


def triangle_count(graph: Graph) -> int:
    """Number of distinct triangles (unordered vertex triples)."""
    if graph.n_edges == 0:
        return 0
    if _sp is not None:
        adj = _sp.csr_matrix(
            (np.ones(len(graph.indices), dtype=np.int64), graph.indices, graph.indptr),
            shape=(graph.n_vertices, graph.n_vertices),
        )
        paths2 = adj @ adj
        closed = paths2.multiply(adj).sum()
        return int(closed) // 6
    return _triangle_count_merge(graph)


def _triangle_count_merge(graph: Graph) -> int:
    """Reference per-edge intersection counter (3x per triangle)."""
    total = 0
    for u in range(graph.n_vertices):
        nu = graph.neighbors(u)
        for v in nu[nu > u]:
            total += intersect_count(nu, graph.neighbors(int(v)))
    # Each triangle {a,b,c} is counted once per edge with u < v: 3 times.
    return total // 3


def wedge_count(graph: Graph) -> int:
    """Number of wedges (paths of length 2, centre-distinct)."""
    d = graph.degrees.astype(np.int64)
    return int((d * (d - 1) // 2).sum())


def global_clustering(graph: Graph) -> float:
    """Transitivity: 3 * triangles / wedges."""
    wedges = wedge_count(graph)
    if wedges == 0:
        return 0.0
    return 3.0 * triangle_count(graph) / wedges


def degree_histogram(graph: Graph) -> np.ndarray:
    """hist[d] = number of vertices with degree d."""
    return np.bincount(graph.degrees.astype(np.int64), minlength=1)


@dataclass(frozen=True)
class DegreeStats:
    """Degree-only statistics: the cheap subset of :class:`GraphStats`.

    The frontier engine's auxiliary-pruning cost gate runs *inside*
    execution, where paying the triangle count behind :class:`GraphStats`
    per engine build would defeat the optimisation.  This summary is
    O(1) from the CSR header and approximates the paper's estimator
    with the independence proxy ``p2 ≈ p1`` — a deliberate
    *underestimate* of intersection sizes on clustered graphs, which
    only makes the gate more conservative about materialising.
    """

    n_vertices: int
    n_edges: int

    @classmethod
    def of(cls, graph: Graph) -> "DegreeStats":
        return cls(n_vertices=graph.n_vertices, n_edges=graph.n_edges)

    @property
    def avg_degree(self) -> float:
        return 2.0 * self.n_edges / self.n_vertices if self.n_vertices else 0.0

    @property
    def p1(self) -> float:
        """P((a,b) ∈ E | a, b ∈ V) = 2|E| / |V|^2."""
        if self.n_vertices == 0:
            return 0.0
        return 2.0 * self.n_edges / float(self.n_vertices) ** 2

    def expected_pool_size(self, n_neighborhoods: int) -> float:
        """E[|∩ of n neighbourhoods|] under the ``p2 ≈ p1`` proxy.

        ``n = 1`` gives the average degree; each further neighbourhood
        multiplies by ``p1`` (vs. the full model's ``p2``).
        """
        if n_neighborhoods < 0:
            raise ValueError("n_neighborhoods must be >= 0")
        if n_neighborhoods == 0:
            return float(self.n_vertices)
        return float(self.n_vertices) * self.p1**n_neighborhoods


def degree_statistics(graph: Graph) -> DegreeStats:
    """The degree-only summary feeding runtime cost gates."""
    return DegreeStats.of(graph)


@dataclass(frozen=True)
class GraphStats:
    """The structural summary consumed by the performance model."""

    n_vertices: int
    n_edges: int
    triangles: int
    max_degree: int

    @classmethod
    def of(cls, graph: Graph) -> "GraphStats":
        return cls(
            n_vertices=graph.n_vertices,
            n_edges=graph.n_edges,
            triangles=triangle_count(graph),
            max_degree=graph.max_degree,
        )

    # -- quantities exactly as defined in §IV-C --------------------------
    @property
    def tri_cnt(self) -> int:
        """Triangle *embeddings* (6 per distinct triangle), the paper's tri_cnt."""
        return 6 * self.triangles

    @property
    def avg_degree(self) -> float:
        return 2.0 * self.n_edges / self.n_vertices if self.n_vertices else 0.0

    @property
    def p1(self) -> float:
        """P((a,b) ∈ E | a, b ∈ V) = 2|E| / |V|^2."""
        if self.n_vertices == 0:
            return 0.0
        return 2.0 * self.n_edges / float(self.n_vertices) ** 2

    @property
    def p2(self) -> float:
        """P((a,b) ∈ E | c ∈ V, a, b ∈ N(c)) = tri_cnt * |V| / (2|E|)^2."""
        if self.n_edges == 0:
            return 0.0
        return self.tri_cnt * float(self.n_vertices) / (2.0 * self.n_edges) ** 2

    def expected_candidate_size(self, n_neighborhoods: int) -> float:
        """E[|∩ of n neighbourhoods|] = |V| * p1 * p2^(n-1); |V| for n = 0.

        This is the paper's cardinality estimator, used for both loop
        sizes (l_i) and intersection costs (c_i).
        """
        if n_neighborhoods < 0:
            raise ValueError("n_neighborhoods must be >= 0")
        if n_neighborhoods == 0:
            return float(self.n_vertices)
        return float(self.n_vertices) * self.p1 * self.p2 ** (n_neighborhoods - 1)

    def describe(self) -> str:
        return (
            f"|V|={self.n_vertices} |E|={self.n_edges} triangles={self.triangles} "
            f"avg_deg={self.avg_degree:.2f} max_deg={self.max_degree} "
            f"p1={self.p1:.3e} p2={self.p2:.3e}"
        )
