"""Scaled-down seeded proxies of the paper's Table I datasets.

The paper evaluates on six SNAP graphs (Wiki-Vote, MiCo, Patents,
LiveJournal, Orkut, Twitter).  We cannot ship those, and pure Python
cannot process billions of edges anyway (repro band: 3/5), so each
dataset is replaced by a *synthetic proxy* whose degree skew and
clustering regime match the original at 10^2–10^4x reduced scale:

====================  =====================  ==========================
paper graph           character              proxy recipe
====================  =====================  ==========================
Wiki-Vote  (7K/101K)  small, dense, skewed   power-law, full scale-ish
MiCo       (97K/1.1M) co-authorship, clustered  power-law + high skew
Patents    (3.8M/16.5M) sparse citation      Watts–Strogatz (clustered)
LiveJournal(4M/34.7M) social, heavy tail     Barabási–Albert
Orkut      (3.1M/117M) social, dense         Barabási–Albert, higher m
Twitter    (41.7M/1.2B) social, extreme      power-law, largest proxy
====================  =====================  ==========================

Real loaders: if the genuine SNAP file is available, point
``load_dataset(name, path=...)`` at it and the proxy is bypassed — the
rest of the pipeline is agnostic.

All proxies are memoised per (name, scale, seed) in-process; pass
``cache_dir`` to persist across processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.graph.csr import Graph
from repro.graph.generators import barabasi_albert, random_power_law, watts_strogatz
from repro.graph.io import load_edge_list, load_or_build


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one proxy dataset."""

    name: str
    paper_vertices: str
    paper_edges: str
    description: str
    factory: Callable[[float, int], Graph]


def _wiki_vote(scale: float, seed: int) -> Graph:
    n = max(64, int(1200 * scale))
    return random_power_law(n, avg_degree=14.0, exponent=2.2, seed=seed, name="wiki-vote")


def _mico(scale: float, seed: int) -> Graph:
    n = max(128, int(4000 * scale))
    return random_power_law(n, avg_degree=11.0, exponent=2.4, seed=seed, name="mico")


def _patents(scale: float, seed: int) -> Graph:
    n = max(128, int(12000 * scale))
    return watts_strogatz(n, k=4, beta=0.3, seed=seed, name="patents")


def _livejournal(scale: float, seed: int) -> Graph:
    n = max(128, int(10000 * scale))
    return barabasi_albert(n, m=4, seed=seed, name="livejournal")


def _orkut(scale: float, seed: int) -> Graph:
    n = max(128, int(6000 * scale))
    return barabasi_albert(n, m=9, seed=seed, name="orkut")


def _twitter(scale: float, seed: int) -> Graph:
    n = max(256, int(20000 * scale))
    return random_power_law(n, avg_degree=12.0, exponent=2.1, seed=seed, name="twitter")


DATASETS: dict[str, DatasetSpec] = {
    "wiki-vote": DatasetSpec(
        "wiki-vote", "7.1K", "100.8K", "Wiki editor voting", _wiki_vote
    ),
    "mico": DatasetSpec("mico", "96.6K", "1.1M", "Co-authorship", _mico),
    "patents": DatasetSpec("patents", "3.8M", "16.5M", "US patents", _patents),
    "livejournal": DatasetSpec(
        "livejournal", "4.0M", "34.7M", "Social network", _livejournal
    ),
    "orkut": DatasetSpec("orkut", "3.1M", "117.2M", "Social network", _orkut),
    "twitter": DatasetSpec("twitter", "41.7M", "1.2B", "Social network", _twitter),
}

#: the five graphs used for the single-node comparisons (Figure 8/10);
#: Twitter is reserved for the scalability study, exactly as in the paper.
SINGLE_NODE_DATASETS = ["wiki-vote", "mico", "patents", "livejournal", "orkut"]

_memo: dict[tuple[str, float, int], Graph] = {}


def dataset_names() -> list[str]:
    return list(DATASETS)


def load_dataset(
    name: str,
    *,
    scale: float = 1.0,
    seed: int = 2020,
    path: str | Path | None = None,
    cache_dir: str | Path | None = None,
) -> Graph:
    """Load a proxy dataset (or a real SNAP file if ``path`` is given).

    ``scale`` multiplies the proxy vertex count — benchmarks use values
    well below 1.0 to keep pure-Python run times sane, and state the
    scale they used in their output.
    """
    if path is not None:
        return load_edge_list(path, name=name)
    key = name.lower()
    if key not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASETS)}")
    spec = DATASETS[key]
    memo_key = (key, float(scale), int(seed))
    if memo_key in _memo:
        return _memo[memo_key]
    if cache_dir is not None:
        cache = Path(cache_dir) / f"{key}_s{scale}_r{seed}.npz"
        graph = load_or_build(cache, lambda: spec.factory(scale, seed))
    else:
        graph = spec.factory(scale, seed)
    _memo[memo_key] = graph
    return graph


def clear_memo() -> None:
    """Drop the in-process dataset cache (tests use this)."""
    _memo.clear()
