"""Graph serialisation: SNAP-style edge lists and a fast binary cache.

The paper's datasets (Table I) are distributed as SNAP text edge lists;
``load_edge_list`` reads that format (comment lines starting with ``#``
or ``%``, whitespace-separated integer pairs).  Because text parsing of
multi-million-edge files is slow in Python, ``save_binary``/``load_binary``
provide an ``.npz`` cache holding the CSR arrays directly.
"""

from __future__ import annotations

import io as _stdlib_io
import os
from pathlib import Path

import numpy as np

from repro.graph.builder import build_graph_arrays
from repro.graph.csr import Graph
from repro.graph.intersection import VERTEX_DTYPE

_COMMENT_PREFIXES = ("#", "%", "//")


def load_edge_list(path: str | os.PathLike | _stdlib_io.TextIOBase, name: str = "") -> Graph:
    """Load a whitespace-separated edge list (SNAP format).

    Directed duplicates, self-loops and arbitrary vertex ids are
    normalised away by the builder pipeline.  ``path`` may also be an
    open text stream (useful in tests).
    """
    if isinstance(path, _stdlib_io.TextIOBase):
        text = path.read()
        label = name or "<stream>"
    else:
        p = Path(path)
        text = p.read_text()
        label = name or p.stem
    src: list[int] = []
    dst: list[int] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith(_COMMENT_PREFIXES):
            continue
        parts = stripped.split()
        if len(parts) < 2:
            raise ValueError(f"line {lineno}: expected 'u v', got {line!r}")
        try:
            u, v = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise ValueError(f"line {lineno}: non-integer vertex id in {line!r}") from exc
        src.append(u)
        dst.append(v)
    graph, _ = build_graph_arrays(
        np.asarray(src, dtype=VERTEX_DTYPE),
        np.asarray(dst, dtype=VERTEX_DTYPE),
        name=label,
    )
    return graph


def save_edge_list(graph: Graph, path: str | os.PathLike, header: bool = True) -> None:
    """Write the graph as a SNAP-style undirected edge list (u < v)."""
    p = Path(path)
    with p.open("w") as fh:
        if header:
            fh.write(f"# {graph.name or 'graph'}: {graph.n_vertices} vertices, "
                     f"{graph.n_edges} edges\n")
        for u, v in graph.edges():
            fh.write(f"{u}\t{v}\n")


def load_graphpi_format(path: str | os.PathLike | _stdlib_io.TextIOBase,
                        name: str = "") -> Graph:
    """Load the GraphPi artifact's native input format.

    The released GraphPi code reads a header line ``|V| |E|`` followed by
    one directed edge per line; we accept it for drop-in compatibility
    and verify the header against the parsed content.
    """
    if isinstance(path, _stdlib_io.TextIOBase):
        text = path.read()
        label = name or "<stream>"
    else:
        p = Path(path)
        text = p.read_text()
        label = name or p.stem
    lines = [ln.strip() for ln in text.splitlines() if ln.strip()]
    if not lines:
        raise ValueError("empty GraphPi-format file")
    header = lines[0].split()
    if len(header) != 2:
        raise ValueError(f"expected '|V| |E|' header, got {lines[0]!r}")
    n_vertices, n_edges = int(header[0]), int(header[1])
    src: list[int] = []
    dst: list[int] = []
    for lineno, line in enumerate(lines[1:], start=2):
        parts = line.split()
        if len(parts) < 2:
            raise ValueError(f"line {lineno}: expected 'u v', got {line!r}")
        src.append(int(parts[0]))
        dst.append(int(parts[1]))
    if len(src) != n_edges:
        raise ValueError(
            f"header declares {n_edges} edges but file has {len(src)} edge lines"
        )
    graph, _ = build_graph_arrays(
        np.asarray(src, dtype=VERTEX_DTYPE),
        np.asarray(dst, dtype=VERTEX_DTYPE),
        compact_ids=False,
        name=label,
    )
    if graph.n_vertices > n_vertices:
        raise ValueError(
            f"header declares {n_vertices} vertices but ids reach {graph.n_vertices - 1}"
        )
    if graph.n_vertices < n_vertices:
        indptr = np.concatenate(
            [graph.indptr,
             np.full(n_vertices - graph.n_vertices, graph.indptr[-1], dtype=np.int64)]
        )
        graph = Graph(indptr, graph.indices, name=label)
    return graph


def save_binary(graph: Graph, path: str | os.PathLike) -> None:
    """Cache the CSR arrays to an ``.npz`` file."""
    np.savez_compressed(
        Path(path),
        indptr=graph.indptr,
        indices=graph.indices,
        name=np.asarray(graph.name),
    )


def load_binary(path: str | os.PathLike) -> Graph:
    """Load a graph cached with :func:`save_binary`."""
    with np.load(Path(path), allow_pickle=False) as data:
        name = str(data["name"]) if "name" in data else ""
        return Graph(data["indptr"], data["indices"], name=name)


def load_or_build(path: str | os.PathLike, factory, *, refresh: bool = False) -> Graph:
    """Memoise ``factory()`` into a binary cache file at ``path``.

    The dataset-proxy module uses this so that the expensive synthetic
    generators run once per seed and are instant afterwards.
    """
    p = Path(path)
    if p.exists() and not refresh:
        try:
            return load_binary(p)
        except Exception:
            p.unlink(missing_ok=True)  # corrupted cache — rebuild
    graph = factory()
    p.parent.mkdir(parents=True, exist_ok=True)
    save_binary(graph, p)
    return graph


def load_edge_list_directed(
    path: str | os.PathLike | _stdlib_io.TextIOBase, name: str = ""
) -> "object":
    """Load a SNAP edge list *preserving arc directions*.

    SNAP social/citation dumps are directed; :func:`load_edge_list`
    symmetrises them (the paper's undirected setting), this loader keeps
    them as a :class:`repro.graph.digraph.DiGraph` for the directed
    extension.  Self-loops and duplicate arcs are dropped; vertex ids
    are compacted to 0..n-1 (matching the undirected loader).
    """
    from repro.graph.digraph import digraph_from_edges

    if isinstance(path, _stdlib_io.TextIOBase):
        text = path.read()
        label = name or "<stream>"
    else:
        p = Path(path)
        text = p.read_text()
        label = name or p.stem
    edges: list[tuple[int, int]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith(_COMMENT_PREFIXES):
            continue
        parts = stripped.split()
        if len(parts) < 2:
            raise ValueError(f"line {lineno}: expected 'u v', got {line!r}")
        try:
            edges.append((int(parts[0]), int(parts[1])))
        except ValueError as exc:
            raise ValueError(f"line {lineno}: non-integer vertex id in {line!r}") from exc
    if not edges:
        raise ValueError("no edges in directed edge list")
    # compact ids like the undirected loader
    ids = sorted({u for u, _ in edges} | {v for _, v in edges})
    remap = {old: new for new, old in enumerate(ids)}
    return digraph_from_edges(
        [(remap[u], remap[v]) for u, v in edges], name=label
    )
